package model

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// EdgeConvModule is DGCNN's basic block (Fig. 2b): build a k-NN graph, form
// edge features [f_i | f_j − f_i], run a shared MLP and max-pool over the k
// edges of each point. The point count never changes (no sampling stage).
//
// The first module measures neighbor distance in coordinate space (where the
// Morton window approximation applies); deeper modules measure it in feature
// space, where the paper instead *reuses* earlier indexes per ReusePolicy.
type EdgeConvModule struct {
	K     int
	MLP   *nn.Sequential
	Strat ModuleStrategy

	cache ecCache
}

type ecCache struct {
	nbr     []int
	argmax  []int32
	k, n, c int
}

// forward runs one EdgeConv block over lv. wksp is the network's inference
// workspace (nil when training); train and wksp != nil are mutually exclusive.
//
//edgepc:hotpath
func (m *EdgeConvModule) forward(lv *level, layer int, reuse *core.ReuseCache, trace *Trace, train bool, wksp *tensor.Workspace) (*level, error) {
	n := lv.len()
	k := clampK(m.K, n)

	// --- Neighbor search (or reuse) ---
	var nbr []int
	var computed bool
	var algo string
	w := 0
	dur, err := timed(func() error {
		var e error
		nbr, computed, e = reuse.ForLayer(layer, k, func() ([]int, error) {
			if m.Strat.MortonWindow && lv.mortonSorted && layer == 0 {
				algo = "morton-window"
				searcher := core.WindowSearcher{W: m.Strat.WindowW}
				w = m.Strat.WindowW
				if w < k {
					w = k
				}
				return searcher.SearchAll(lv.pts, k)
			}
			if layer == 0 {
				algo = "knn-brute"
				coords := coordMatrix(wksp, lv.pts)
				idx := featKNN(coords, k)
				wsPut(wksp, coords)
				return idx, nil
			}
			algo = "knn-feature"
			return featKNN(lv.feats, k), nil
		})
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("model: EC%d neighbor: %w", layer, err)
	}
	if !computed {
		algo = "reuse"
	}
	trace.Add(StageRecord{
		Stage: StageNeighbor, Layer: layer, Algo: algo,
		N: n, Q: n, K: k, W: w, CIn: lv.feats.Cols, Reused: !computed, Dur: dur,
	})

	// --- Group ---
	var grouped *tensor.Matrix
	dur, err = timed(func() error {
		var e error
		grouped, e = buildGroupedEdge(wksp, lv.feats, nbr, k)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("model: EC%d group: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageGroup, Layer: layer, Algo: "gather", N: n, Q: n, K: k, CIn: grouped.Cols, Dur: dur})

	// --- Feature compute ---
	var feats *tensor.Matrix
	var argmax []int32
	cin := grouped.Cols
	dur, err = timed(func() error {
		y, e := m.MLP.Forward(grouped, train)
		if e != nil {
			return e
		}
		if wksp != nil {
			if y != grouped {
				wsPut(wksp, grouped)
			}
			feats = wksp.Get(y.Rows/k, y.Cols)
			if e = tensor.MaxPoolGroupsInto(feats, nil, y, k); e != nil {
				return e
			}
			wsPut(wksp, y)
			return nil
		}
		//edgepc:lint-ignore hotpathalloc training / no-workspace fallback; backward needs the argmax this variant returns
		feats, argmax, e = tensor.MaxPoolGroups(y, k)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("model: EC%d feature: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageFeature, Layer: layer, Algo: "shared-mlp", Q: n * k, CIn: cin, COut: feats.Cols, Dur: dur})

	if train {
		m.cache = ecCache{nbr: nbr, argmax: argmax, k: k, n: n, c: lv.feats.Cols}
	}
	return &level{pts: lv.pts, feats: feats, mortonSorted: lv.mortonSorted}, nil
}

func (m *EdgeConvModule) backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	c := &m.cache
	if c.nbr == nil {
		return nil, fmt.Errorf("model: EC backward before forward(train)")
	}
	g, err := tensor.MaxPoolBackward(grad, c.argmax, c.k)
	if err != nil {
		return nil, err
	}
	g, err = m.MLP.Backward(g)
	if err != nil {
		return nil, err
	}
	return groupedEdgeBackward(g, c.nbr, c.n, c.c)
}

// Task selects the DGCNN head.
type Task int

// DGCNN task heads. Classification pools globally; Segmentation emits
// per-point logits (used for both part and semantic segmentation).
const (
	TaskClassification Task = iota
	TaskSegmentation
)

// DGCNN is the EdgeConv network of Fig. 2b with per-layer strategy selection
// and the paper's neighbor-index reuse across modules.
//
// Concurrency: a DGCNN is NOT safe for concurrent use — Forward mutates the
// per-net workspace, the layer caches and the neighbor-reuse cache.
// Eval-mode Forward (train=false) only *reads* the trainable weights, so
// weight-sharing replicas (pipeline.Replicas / nn.ShareParams) may run
// concurrently, one replica per goroutine (internal/serve). Training mutates
// weights and must own them exclusively.
type DGCNN struct {
	EC          []*EdgeConvModule
	Embed       *nn.Sequential // fuses the concatenated EC outputs
	Head        *nn.Sequential
	Task        Task
	Reuse       core.ReusePolicy
	Structurize *core.StructurizeOptions

	extraFeatDim int

	// ws is the inference workspace: lazily created at the first eval
	// Forward, attached to every MLP, and Reset at each eval frame start so
	// frame N+1 reuses frame N's buffers. The training path never touches it.
	ws *tensor.Workspace

	// forward caches
	ecOuts    []*tensor.Matrix // outputs of each EC module (post-pool)
	ecCols    []int
	clsArgmax []int32
	embedRows int
}

// DGCNNConfig describes a DGCNN instance.
type DGCNNConfig struct {
	Classes    int
	Modules    int // number of EdgeConv modules; default 3 (paper's DGCNN(s)); 4 for the reuse demo
	BaseWidth  int // EC output width (constant across modules); default 16
	K          int // neighbors; default 8 (paper uses 20 at full scale)
	EmbedWidth int // fused embedding width; default 4×BaseWidth
	// ExtraFeatDim is the width of per-point input features beyond the
	// coordinates; input clouds must carry exactly this FeatDim.
	ExtraFeatDim int
	Strategies   []ModuleStrategy
	Reuse        core.ReusePolicy
	Task         Task
	Structurize  *core.StructurizeOptions
	// Dropout is the head dropout probability; 0 selects the default (0.3),
	// a negative value disables dropout (useful for gradient checking).
	Dropout float64
	Seed    int64
}

func (c *DGCNNConfig) defaults() {
	if c.Modules == 0 {
		c.Modules = 3
	}
	if c.BaseWidth == 0 {
		c.BaseWidth = 16
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.EmbedWidth == 0 {
		c.EmbedWidth = 4 * c.BaseWidth
	}
	if c.Strategies == nil {
		c.Strategies = make([]ModuleStrategy, c.Modules)
	}
}

// NewDGCNN constructs the network.
func NewDGCNN(cfg DGCNNConfig) (*DGCNN, error) {
	cfg.defaults()
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("model: need ≥2 classes, got %d", cfg.Classes)
	}
	if len(cfg.Strategies) != cfg.Modules {
		return nil, fmt.Errorf("model: %d strategies for %d modules", len(cfg.Strategies), cfg.Modules)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	net := &DGCNN{Task: cfg.Task, Reuse: cfg.Reuse, Structurize: cfg.Structurize, extraFeatDim: cfg.ExtraFeatDim}
	inC := 3 + cfg.ExtraFeatDim
	for l := 0; l < cfg.Modules; l++ {
		net.EC = append(net.EC, &EdgeConvModule{
			K:     cfg.K,
			MLP:   nn.NewSharedMLP(fmt.Sprintf("ec%d", l), []int{2 * inC, cfg.BaseWidth, cfg.BaseWidth}, rng),
			Strat: cfg.Strategies[l],
		})
		inC = cfg.BaseWidth
	}
	concatC := cfg.Modules * cfg.BaseWidth
	net.Embed = nn.NewSharedMLP("embed", []int{concatC, cfg.EmbedWidth}, rng)
	// The classification head sees a single globally pooled row per cloud
	// (this implementation processes clouds one at a time), so BatchNorm —
	// which normalizes over rows — would be degenerate there; it stays in
	// the segmentation head, where rows are points.
	headLayers := []nn.Layer{
		nn.NewLinear("head.0", cfg.EmbedWidth, cfg.EmbedWidth/2, rng),
	}
	if cfg.Task == TaskSegmentation {
		headLayers = append(headLayers, nn.NewBatchNorm("head.0.bn", cfg.EmbedWidth/2))
	}
	headLayers = append(headLayers,
		&nn.ReLU{},
		&nn.Dropout{P: dropoutP(cfg.Dropout), Rng: rand.New(rand.NewSource(cfg.Seed + 4))},
		nn.NewLinear("head.1", cfg.EmbedWidth/2, cfg.Classes, rng),
	)
	net.Head = nn.NewSequential(headLayers...)
	return net, nil
}

// Params returns all trainable parameters.
func (n *DGCNN) Params() []*nn.Param {
	var out []*nn.Param
	for _, m := range n.EC {
		out = append(out, m.MLP.Params()...)
	}
	out = append(out, n.Embed.Params()...)
	return append(out, n.Head.Params()...)
}

// workspace lazily creates the inference workspace and attaches it to every
// layer stack, then starts a fresh frame. Returns nil in training mode.
func (n *DGCNN) workspace(train bool) *tensor.Workspace {
	if train {
		return nil
	}
	if n.ws == nil {
		n.ws = tensor.NewWorkspace()
		for _, m := range n.EC {
			m.MLP.SetWorkspace(n.ws)
		}
		n.Embed.SetWorkspace(n.ws)
		n.Head.SetWorkspace(n.ws)
	}
	n.ws.Reset()
	return n.ws
}

// Forward runs one cloud through the network. For classification the logits
// matrix has a single row; for segmentation one row per point. Eval frames
// (train=false) serve all intermediate activations from a per-network
// workspace; the returned logits are cloned out of it, so an Output remains
// valid across subsequent Forward calls.
//
//edgepc:hotpath
func (n *DGCNN) Forward(cloud *geom.Cloud, trace *Trace, train bool) (*Output, error) {
	if cloud.Len() == 0 {
		return nil, fmt.Errorf("model: empty cloud")
	}
	ws := n.workspace(train)
	pts := cloud.Points
	feat, featDim := cloud.Feat, cloud.FeatDim
	labels := cloud.Labels
	var perm []int
	sorted := false
	if n.Structurize != nil {
		start := time.Now()
		s, err := core.Structurize(cloud, *n.Structurize)
		if err != nil {
			return nil, err
		}
		trace.Add(StageRecord{Stage: StageStructurize, Layer: 0, Algo: "morton", N: cloud.Len(), Dur: time.Since(start)})
		pts = s.Cloud.Points
		feat, featDim = s.Cloud.Feat, s.Cloud.FeatDim
		labels = s.Cloud.Labels
		perm = s.Perm
		sorted = true
	}
	feats, err := inputFeatures(ws, pts, feat, featDim, n.extraFeatDim)
	if err != nil {
		return nil, err
	}
	lv := &level{pts: pts, feats: feats, mortonSorted: sorted}
	reuse := core.NewReuseCache(n.Reuse)
	var outs []*tensor.Matrix
	for i, m := range n.EC {
		next, err := m.forward(lv, i, reuse, trace, train, ws)
		if err != nil {
			return nil, err
		}
		if ws != nil && i == 0 && next.feats != lv.feats {
			// The input features are dead once EC0 consumed them; the EC
			// outputs themselves stay alive for the skip concat below.
			wsPut(ws, lv.feats)
		}
		//edgepc:lint-ignore hotpathalloc O(modules) feature-matrix headers per frame
		outs = append(outs, next.feats)
		lv = next
	}
	var fused *tensor.Matrix
	if ws != nil && len(outs) > 1 {
		// Fill the concatenation directly instead of chaining pairwise
		// Concats: one buffer, one copy per EC output.
		total := 0
		for _, o := range outs {
			total += o.Cols
		}
		fused = ws.Get(outs[0].Rows, total)
		off := 0
		for _, o := range outs {
			for r := 0; r < o.Rows; r++ {
				copy(fused.Row(r)[off:off+o.Cols], o.Row(r))
			}
			off += o.Cols
		}
		for _, o := range outs {
			wsPut(ws, o)
		}
	} else {
		fused = outs[0]
		for _, o := range outs[1:] {
			//edgepc:lint-ignore hotpathalloc training / no-workspace fallback; the eval branch above fills one workspace buffer
			fused, err = tensor.Concat(fused, o)
			if err != nil {
				return nil, err
			}
		}
	}
	var embedded *tensor.Matrix
	cin := fused.Cols
	dur, err := timed(func() error {
		var e error
		embedded, e = n.Embed.Forward(fused, train)
		return e
	})
	if err != nil {
		return nil, err
	}
	trace.Add(StageRecord{Stage: StageFeature, Layer: len(n.EC), Algo: "shared-mlp", Q: fused.Rows, CIn: cin, COut: embedded.Cols, Dur: dur})
	if ws != nil && embedded != fused {
		wsPut(ws, fused)
	}

	var logits *tensor.Matrix
	if n.Task == TaskClassification {
		vals, argmax := tensor.ColMax(embedded)
		wsPut(ws, embedded)
		pooled, _ := tensor.FromSlice(1, len(vals), vals)
		logits, err = n.Head.Forward(pooled, train)
		if err != nil {
			return nil, err
		}
		if train {
			n.clsArgmax = argmax
			n.embedRows = embedded.Rows
		}
		// One label per cloud: majority convention is the caller's concern;
		// we pass through cloud-level labels untouched.
	} else {
		logits, err = n.Head.Forward(embedded, train)
		if err != nil {
			return nil, err
		}
		if ws != nil && logits != embedded {
			wsPut(ws, embedded)
		}
	}
	if ws != nil && ws.Owns(logits) {
		// Detach the result from the workspace so the Output survives the
		// next frame's Reset.
		//edgepc:lint-ignore hotpathalloc deliberate: the Output contract requires logits to outlive the frame
		logits = logits.Clone()
	}
	if train {
		n.ecOuts = outs
		//edgepc:lint-ignore hotpathalloc train-only backward cache
		n.ecCols = make([]int, len(outs))
		for i, o := range outs {
			n.ecCols[i] = o.Cols
		}
	}
	return &Output{Logits: logits, Labels: labels, Perm: perm}, nil
}

// Backward propagates the loss gradient through the network.
func (n *DGCNN) Backward(gradLogits *tensor.Matrix) error {
	if n.ecOuts == nil {
		return fmt.Errorf("model: backward before forward(train)")
	}
	g, err := n.Head.Backward(gradLogits)
	if err != nil {
		return err
	}
	if n.Task == TaskClassification {
		// Route the pooled gradient back to the argmax rows.
		full := tensor.New(n.embedRows, g.Cols)
		row := g.Row(0)
		for c, v := range row {
			full.Data[int(n.clsArgmax[c])*g.Cols+c] += v
		}
		g = full
	}
	g, err = n.Embed.Backward(g)
	if err != nil {
		return err
	}
	// Split the concat gradient into per-EC parts, then run the EC chain
	// backward, summing the skip gradient with the chain gradient.
	parts := make([]*tensor.Matrix, len(n.ecOuts))
	off := 0
	for i, c := range n.ecCols {
		part := tensor.New(g.Rows, c)
		for r := 0; r < g.Rows; r++ {
			copy(part.Row(r), g.Row(r)[off:off+c])
		}
		parts[i] = part
		off += c
	}
	var chain *tensor.Matrix
	for i := len(n.EC) - 1; i >= 0; i-- {
		total := parts[i]
		if chain != nil {
			for j, v := range chain.Data {
				total.Data[j] += v
			}
		}
		chain, err = n.EC[i].backward(total)
		if err != nil {
			return err
		}
	}
	return nil
}
