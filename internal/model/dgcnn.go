package model

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// EdgeConvModule is DGCNN's basic block (Fig. 2b): build a k-NN graph, form
// edge features [f_i | f_j − f_i], run a shared MLP and max-pool over the k
// edges of each point. The point count never changes (no sampling stage).
//
// The first module measures neighbor distance in coordinate space (where the
// Morton window approximation applies); deeper modules measure it in feature
// space, where the paper instead *reuses* earlier indexes per ReusePolicy.
type EdgeConvModule struct {
	K     int
	MLP   *nn.Sequential
	Strat ModuleStrategy

	cache ecCache
}

type ecCache struct {
	nbr     []int
	argmax  []int32
	k, n, c int
}

// forward runs one EdgeConv block over lv and fills next with the result
// level. Execution context (trace, train flag, workspace, reuse cache) comes
// from the Graph's Exec; train and x.ws != nil are mutually exclusive.
//
//edgepc:hotpath
func (m *EdgeConvModule) forward(lv, next *level, layer int, x *Exec) error {
	reuse, trace, train, wksp := x.reuse, x.trace, x.train, x.ws
	n := lv.len()
	k := clampK(m.K, n)

	// --- Neighbor search (or reuse) ---
	var nbr []int
	var computed bool
	var algo string
	w := 0
	dur, err := timed(func() error {
		var e error
		nbr, computed, e = reuse.ForLayer(layer, k, func() ([]int, error) {
			if m.Strat.MortonWindow && lv.mortonSorted && layer == 0 {
				algo = "morton-window"
				searcher := core.WindowSearcher{W: m.Strat.WindowW}
				w = m.Strat.WindowW
				if w < k {
					w = k
				}
				return searcher.SearchAll(lv.pts, k)
			}
			if layer == 0 {
				algo = "knn-brute"
				coords := coordMatrix(wksp, lv.pts)
				idx := featKNN(coords, k)
				wsPut(wksp, coords)
				return idx, nil
			}
			algo = "knn-feature"
			return featKNN(lv.feats, k), nil
		})
		return e
	})
	if err != nil {
		return fmt.Errorf("model: EC%d neighbor: %w", layer, err)
	}
	if !computed {
		algo = "reuse"
	}
	trace.Add(StageRecord{
		Stage: StageNeighbor, Layer: layer, Algo: algo,
		N: n, Q: n, K: k, W: w, CIn: lv.feats.Cols, Reused: !computed, Dur: dur,
	})

	// --- Group ---
	var grouped *tensor.Matrix
	dur, err = timed(func() error {
		var e error
		grouped, e = buildGroupedEdge(wksp, lv.feats, nbr, k)
		return e
	})
	if err != nil {
		return fmt.Errorf("model: EC%d group: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageGroup, Layer: layer, Algo: "gather", N: n, Q: n, K: k, CIn: grouped.Cols, Dur: dur})

	// --- Feature compute ---
	var feats *tensor.Matrix
	var argmax []int32
	cin := grouped.Cols
	dur, err = timed(func() error {
		y, e := m.MLP.Forward(grouped, train)
		if e != nil {
			return e
		}
		if wksp != nil {
			if y != grouped {
				wsPut(wksp, grouped)
			}
			feats = wksp.Get(y.Rows/k, y.Cols)
			if e = x.be.MaxPoolGroupsInto(feats, nil, y, k); e != nil {
				return e
			}
			wsPut(wksp, y)
			return nil
		}
		//edgepc:lint-ignore hotpathalloc training / no-workspace fallback; backward needs the argmax this variant returns
		feats, argmax, e = tensor.MaxPoolGroups(y, k)
		return e
	})
	if err != nil {
		return fmt.Errorf("model: EC%d feature: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageFeature, Layer: layer, Algo: "shared-mlp", Q: n * k, CIn: cin, COut: feats.Cols, Dur: dur})

	if train {
		m.cache = ecCache{nbr: nbr, argmax: argmax, k: k, n: n, c: lv.feats.Cols}
	}
	next.pts = lv.pts
	//edgepc:lint-ignore workspacepair level fields are frame-scoped; Graph.Forward resets the workspace before reusing them
	next.feats = feats
	next.mortonSorted = lv.mortonSorted
	return nil
}

func (m *EdgeConvModule) backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	c := &m.cache
	if c.nbr == nil {
		return nil, fmt.Errorf("model: EC backward before forward(train)")
	}
	g, err := tensor.MaxPoolBackward(grad, c.argmax, c.k)
	if err != nil {
		return nil, err
	}
	g, err = m.MLP.Backward(g)
	if err != nil {
		return nil, err
	}
	return groupedEdgeBackward(g, c.nbr, c.n, c.c)
}

// Task selects the DGCNN head.
type Task int

// DGCNN task heads. Classification pools globally; Segmentation emits
// per-point logits (used for both part and semantic segmentation).
const (
	TaskClassification Task = iota
	TaskSegmentation
)

// DGCNN is the EdgeConv network of Fig. 2b with per-layer strategy selection
// and the paper's neighbor-index reuse across modules, compiled into a stage
// Graph (see graph.go) that owns the shared executor machinery.
//
// Concurrency: see Graph — eval-mode weight-sharing replicas may run
// concurrently, one per goroutine; training must own the weights.
type DGCNN struct {
	EC          []*EdgeConvModule
	Embed       *nn.Sequential // fuses the concatenated EC outputs
	Head        *nn.Sequential
	Task        Task
	Reuse       core.ReusePolicy
	Structurize *core.StructurizeOptions

	graph *Graph
}

// DGCNNConfig describes a DGCNN instance.
type DGCNNConfig struct {
	Classes    int
	Modules    int // number of EdgeConv modules; default 3 (paper's DGCNN(s)); 4 for the reuse demo
	BaseWidth  int // EC output width (constant across modules); default 16
	K          int // neighbors; default 8 (paper uses 20 at full scale)
	EmbedWidth int // fused embedding width; default 4×BaseWidth
	// ExtraFeatDim is the width of per-point input features beyond the
	// coordinates; input clouds must carry exactly this FeatDim.
	ExtraFeatDim int
	Strategies   []ModuleStrategy
	Reuse        core.ReusePolicy
	Task         Task
	Structurize  *core.StructurizeOptions
	// Dropout is the head dropout probability; 0 selects the default (0.3),
	// a negative value disables dropout (useful for gradient checking).
	Dropout float64
	// Backend is the compute backend eval frames dispatch their kernels
	// through (nil → the reference float32 kernels); see tensor.Backend.
	Backend tensor.Backend
	Seed    int64
}

func (c *DGCNNConfig) defaults() {
	if c.Modules == 0 {
		c.Modules = 3
	}
	if c.BaseWidth == 0 {
		c.BaseWidth = 16
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.EmbedWidth == 0 {
		c.EmbedWidth = 4 * c.BaseWidth
	}
	if c.Strategies == nil {
		c.Strategies = make([]ModuleStrategy, c.Modules)
	}
}

// NewDGCNN constructs the network.
func NewDGCNN(cfg DGCNNConfig) (*DGCNN, error) {
	cfg.defaults()
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("model: need ≥2 classes, got %d", cfg.Classes)
	}
	if len(cfg.Strategies) != cfg.Modules {
		return nil, fmt.Errorf("model: %d strategies for %d modules", len(cfg.Strategies), cfg.Modules)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	net := &DGCNN{Task: cfg.Task, Reuse: cfg.Reuse, Structurize: cfg.Structurize}
	inC := 3 + cfg.ExtraFeatDim
	for l := 0; l < cfg.Modules; l++ {
		net.EC = append(net.EC, &EdgeConvModule{
			K:     cfg.K,
			MLP:   nn.NewSharedMLP(fmt.Sprintf("ec%d", l), []int{2 * inC, cfg.BaseWidth, cfg.BaseWidth}, rng),
			Strat: cfg.Strategies[l],
		})
		inC = cfg.BaseWidth
	}
	concatC := cfg.Modules * cfg.BaseWidth
	net.Embed = nn.NewSharedMLP("embed", []int{concatC, cfg.EmbedWidth}, rng)
	// The classification head sees a single globally pooled row per cloud
	// (this implementation processes clouds one at a time), so BatchNorm —
	// which normalizes over rows — would be degenerate there; it stays in
	// the segmentation head, where rows are points.
	headLayers := []nn.Layer{
		nn.NewLinear("head.0", cfg.EmbedWidth, cfg.EmbedWidth/2, rng),
	}
	if cfg.Task == TaskSegmentation {
		headLayers = append(headLayers, nn.NewBatchNorm("head.0.bn", cfg.EmbedWidth/2))
	}
	headLayers = append(headLayers,
		&nn.ReLU{},
		&nn.Dropout{P: dropoutP(cfg.Dropout), Rng: rand.New(rand.NewSource(cfg.Seed + 4))},
		nn.NewLinear("head.1", cfg.EmbedWidth/2, cfg.Classes, rng),
	)
	net.Head = nn.NewSequential(headLayers...)
	// Declarative stage list: EC chain, skip fusion, embedding, (global pool
	// for classification), head — compiled into the shared Graph executor.
	stages := make([]Stage, 0, cfg.Modules+4)
	for i, m := range net.EC {
		stages = append(stages, &ecStage{name: fmt.Sprintf("ec%d", i), idx: i, m: m})
	}
	stages = append(stages,
		&fuseStage{name: "fuse"},
		&mlpStage{name: "embed", mlp: net.Embed, record: true, traceLayer: cfg.Modules},
	)
	if cfg.Task == TaskClassification {
		stages = append(stages, &globalPoolStage{name: "pool"})
	}
	stages = append(stages, &mlpStage{name: "head", mlp: net.Head})
	g, err := Compile(GraphSpec{
		Stages:       stages,
		Structurize:  cfg.Structurize,
		ExtraFeatDim: cfg.ExtraFeatDim,
		Reuse:        cfg.Reuse,
		Backend:      cfg.Backend,
	})
	if err != nil {
		return nil, err
	}
	net.graph = g
	return net, nil
}

// Params returns all trainable parameters.
func (n *DGCNN) Params() []*nn.Param { return n.graph.Params() }

// Forward runs one cloud through the network. For classification the logits
// matrix has a single row; for segmentation one row per point. See
// Graph.Forward for the workspace contract.
func (n *DGCNN) Forward(cloud *geom.Cloud, trace *Trace, train bool) (*Output, error) {
	return n.graph.Forward(cloud, trace, train)
}

// Backward propagates the loss gradient through the network.
func (n *DGCNN) Backward(gradLogits *tensor.Matrix) error {
	return n.graph.Backward(gradLogits)
}
