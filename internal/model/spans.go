package model

import (
	"time"

	"repro/internal/metrics"
)

// SpanSummary aggregates one graph node's spans across a set of frame traces:
// how long the node ran per frame (summarized in milliseconds) and how that
// time splits across the paper's stage kinds (sample / neighbor / group /
// feature / interp), reconstructed from the stage records each span brackets.
type SpanSummary struct {
	Node  string
	Layer int // module index, or -1 for non-module nodes
	// Frames is how many traces contained this node.
	Frames int
	// Ms summarizes the per-frame span duration in milliseconds.
	Ms metrics.Summary
	// ByStage sums the span's bracketed stage-record durations per kind;
	// stageless nodes (pool, fuse) leave it empty.
	ByStage map[StageKind]time.Duration
}

// SummarizeSpans aggregates the per-node spans of several frame traces into
// one row per node, in first-appearance order. This is the bridge from the
// Graph executor's span instrumentation to the experiment tables (Fig. 3's
// breakdown at per-node granularity).
func SummarizeSpans(traces []*Trace) []SpanSummary {
	type acc struct {
		layer int
		ms    []float64
		by    map[StageKind]time.Duration
	}
	var order []string
	accs := map[string]*acc{}
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		for _, sp := range tr.Spans {
			a := accs[sp.Node]
			if a == nil {
				a = &acc{layer: sp.Layer, by: map[StageKind]time.Duration{}}
				accs[sp.Node] = a
				order = append(order, sp.Node)
			}
			a.ms = append(a.ms, float64(sp.Dur)/float64(time.Millisecond))
			for _, rec := range tr.SpanRecords(sp) {
				a.by[rec.Stage] += rec.Dur
			}
		}
	}
	out := make([]SpanSummary, 0, len(order))
	for _, node := range order {
		a := accs[node]
		out = append(out, SpanSummary{
			Node:    node,
			Layer:   a.layer,
			Frames:  len(a.ms),
			Ms:      metrics.Summarize(a.ms),
			ByStage: a.by,
		})
	}
	return out
}
