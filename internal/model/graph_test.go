package model

import (
	"testing"

	"repro/internal/core"
)

// TestGraphSpansBracketRecords checks the executor's span instrumentation:
// one span per graph node in execution order, each bracketing exactly the
// stage records its node emitted.
func TestGraphSpansBracketRecords(t *testing.T) {
	net, err := NewPointNetPP(tinyPPConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := net.Forward(testCloud(64, 2), trace, false); err != nil {
		t.Fatal(err)
	}

	wantNodes := []string{"structurize", "sa0", "sa1", "fp0", "fp1", "head"}
	wantLayers := []int{-1, 0, 1, 0, 1, -1}
	if len(trace.Spans) != len(wantNodes) {
		t.Fatalf("spans = %d, want %d (%v)", len(trace.Spans), len(wantNodes), trace.Spans)
	}
	prevEnd := 0
	for i, sp := range trace.Spans {
		if sp.Node != wantNodes[i] || sp.Layer != wantLayers[i] {
			t.Fatalf("span %d = %s/%d, want %s/%d", i, sp.Node, sp.Layer, wantNodes[i], wantLayers[i])
		}
		if sp.Rec0 != prevEnd || sp.Rec1 < sp.Rec0 {
			t.Fatalf("span %s brackets [%d,%d), previous ended at %d", sp.Node, sp.Rec0, sp.Rec1, prevEnd)
		}
		prevEnd = sp.Rec1
	}
	if prevEnd != len(trace.Records) {
		t.Fatalf("spans cover %d of %d records", prevEnd, len(trace.Records))
	}

	// An SA node's span brackets its sample/neighbor/group/feature records.
	sa0 := trace.Spans[1]
	recs := trace.SpanRecords(sa0)
	if len(recs) != 4 || recs[0].Stage != StageSample || recs[1].Stage != StageNeighbor ||
		recs[2].Stage != StageGroup || recs[3].Stage != StageFeature {
		t.Fatalf("sa0 records = %v", recs)
	}
	// The head runs no traced stage: an empty bracket, not a missing span.
	head := trace.Spans[len(trace.Spans)-1]
	if head.Rec0 != head.Rec1 {
		t.Fatalf("head span brackets %d records", head.Rec1-head.Rec0)
	}
}

func TestSummarizeSpans(t *testing.T) {
	net, err := NewPointNetPP(tinyPPConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(64, 2)
	var traces []*Trace
	for i := 0; i < 3; i++ {
		tr := &Trace{}
		if _, err := net.Forward(cloud, tr, false); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	sums := SummarizeSpans(append(traces, nil)) // nil traces are skipped
	if len(sums) != 6 {
		t.Fatalf("summaries = %d, want 6", len(sums))
	}
	sa0 := sums[1]
	if sa0.Node != "sa0" || sa0.Layer != 0 || sa0.Frames != 3 || sa0.Ms.N != 3 {
		t.Fatalf("sa0 summary = %+v", sa0)
	}
	if sa0.ByStage[StageSample] <= 0 || sa0.ByStage[StageNeighbor] <= 0 || sa0.ByStage[StageFeature] <= 0 {
		t.Fatalf("sa0 stage split = %v", sa0.ByStage)
	}
	if sums[5].Node != "head" || len(sums[5].ByStage) != 0 {
		t.Fatalf("head summary = %+v", sums[5])
	}
	if got := SummarizeSpans(nil); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
}

// TestPointNetPPReuseAtDistance1 exercises the generalized §5.2.3 reuse on
// PointNet++: with distance 1, the SA1 module must serve its neighbor
// indexes by projecting SA0's cached result through the sampling map instead
// of searching, visible in the trace records its span brackets.
func TestPointNetPPReuseAtDistance1(t *testing.T) {
	cfg := tinyPPConfig(true)
	cfg.Reuse = core.ReusePolicy{Distance: 1}
	net, err := NewPointNetPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(64, 2)
	trace := &Trace{}
	out, err := net.Forward(cloud, trace, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Logits.Rows != 64 || out.Logits.Cols != 3 {
		t.Fatalf("logits %dx%d", out.Logits.Rows, out.Logits.Cols)
	}

	nbrBySpan := map[string]StageRecord{}
	for _, sp := range trace.Spans {
		for _, r := range trace.SpanRecords(sp) {
			if r.Stage == StageNeighbor {
				nbrBySpan[sp.Node] = r
			}
		}
	}
	if r := nbrBySpan["sa0"]; r.Algo != "morton-window" || r.Reused {
		t.Fatalf("sa0 neighbor = %+v, want computed morton-window", r)
	}
	if r := nbrBySpan["sa1"]; r.Algo != "reuse" || !r.Reused {
		t.Fatalf("sa1 neighbor = %+v, want projected reuse", r)
	}

	// The reused run must agree with the searched run everywhere except the
	// neighbor sets themselves — same shapes, deterministic across frames.
	trace2 := &Trace{}
	out2, err := net.Forward(cloud, trace2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Logits.Equal(out.Logits) {
		t.Fatal("reuse forward is not deterministic across frames")
	}
}

// TestPointNetPPReuseFallsBackWithoutProjection: FPS sampling does not keep
// the parent index map ascending, so the projection is unavailable and a
// reuse layer must transparently fall back to a real search.
func TestPointNetPPReuseFallsBackWithoutProjection(t *testing.T) {
	cfg := tinyPPConfig(false) // FPS everywhere
	cfg.Reuse = core.ReusePolicy{Distance: 1}
	net, err := NewPointNetPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := net.Forward(testCloud(64, 2), trace, false); err != nil {
		t.Fatal(err)
	}
	var nbr []StageRecord
	for _, r := range trace.Records {
		if r.Stage == StageNeighbor {
			nbr = append(nbr, r)
		}
	}
	if len(nbr) != 2 || nbr[1].Reused || nbr[1].Algo == "reuse" {
		t.Fatalf("FPS run must search at every layer, got %+v", nbr)
	}
}
