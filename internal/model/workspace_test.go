package model

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func wsTestCloud(t *testing.T, points int) *geom.Cloud {
	t.Helper()
	s, err := dataset.NewSceneSegmentation(1, points, "s3dis", 5).At(0)
	if err != nil {
		t.Fatal(err)
	}
	return s.Cloud
}

// runFrames runs eval Forward repeatedly and checks that (a) every frame is
// deterministic and (b) a frame's Output survives later frames — the logits
// must be detached from the workspace, not aliased into buffers the next
// frame overwrites.
func runFrames(t *testing.T, net interface {
	Forward(cloud *geom.Cloud, trace *Trace, train bool) (*Output, error)
}, cloud *geom.Cloud) {
	t.Helper()
	first, err := net.Forward(cloud, &Trace{}, false)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := first.Logits.Clone()
	for frame := 0; frame < 2; frame++ {
		out, err := net.Forward(cloud, &Trace{}, false)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Logits.Equal(snapshot) {
			t.Fatalf("frame %d: eval forward is not deterministic", frame)
		}
	}
	if !first.Logits.Equal(snapshot) {
		t.Fatal("first frame's logits were clobbered by later frames")
	}
}

func TestPointNetPPWorkspaceFrameStability(t *testing.T) {
	net, err := NewPointNetPP(PPConfig{
		Classes: 5, Depth: 2, BaseWidth: 4, K: 4, SampleFrac: 0.25, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	runFrames(t, net, wsTestCloud(t, 128))
	if net.graph.ws == nil {
		t.Fatal("eval forward did not create the workspace")
	}
	// Warm frames must be served entirely from recycled buffers.
	misses := net.graph.ws.Stats().Misses
	if _, err := net.Forward(wsTestCloud(t, 128), &Trace{}, false); err != nil {
		t.Fatal(err)
	}
	if got := net.graph.ws.Stats().Misses; got != misses {
		t.Fatalf("steady-state frame allocated %d new buffers", got-misses)
	}
}

func TestDGCNNWorkspaceFrameStability(t *testing.T) {
	for _, task := range []Task{TaskSegmentation, TaskClassification} {
		net, err := NewDGCNN(DGCNNConfig{
			Classes: 5, Modules: 2, BaseWidth: 4, K: 4, Task: task, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		runFrames(t, net, wsTestCloud(t, 128))
		if net.graph.ws == nil {
			t.Fatal("eval forward did not create the workspace")
		}
		misses := net.graph.ws.Stats().Misses
		if _, err := net.Forward(wsTestCloud(t, 128), &Trace{}, false); err != nil {
			t.Fatal(err)
		}
		if got := net.graph.ws.Stats().Misses; got != misses {
			t.Fatalf("task %d: steady-state frame allocated %d new buffers", task, got-misses)
		}
	}
}

// TestWorkspaceEvalMatchesTrainForward checks numerics across the mode
// switch: with dropout disabled, the training forward and the
// workspace-backed eval forward see identical arithmetic (BatchNorm uses
// batch statistics in both paths for multi-row inputs) and must agree
// bit-for-bit on the logits.
func TestWorkspaceEvalMatchesTrainForward(t *testing.T) {
	cloud := wsTestCloud(t, 96)
	net, err := NewPointNetPP(PPConfig{
		Classes: 5, Depth: 2, BaseWidth: 4, K: 4, SampleFrac: 0.25,
		Dropout: -1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainOut, err := net.Forward(cloud, &Trace{}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := trainOut.Logits.Clone()
	evalOut, err := net.Forward(cloud, &Trace{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !evalOut.Logits.Equal(want) {
		t.Fatal("workspace eval forward differs from training forward")
	}
}
