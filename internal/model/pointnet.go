package model

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// PointNetVanilla is the original PointNet classifier (Qi et al. 2017): a
// per-point shared MLP followed by global max pooling and a dense head. It
// has *no sampling and no neighbor search* — which makes it the control
// architecture for the paper's Fig. 3 argument: the bottleneck the paper
// attacks exists only in hierarchical models. A vanilla-PointNet trace
// contains feature stages exclusively.
type PointNetVanilla struct {
	MLP  *nn.Sequential // per-point feature extractor
	Head *nn.Sequential // classifier over the pooled global feature

	// forward caches
	rows      int
	argmax    []int32
	embedCols int
}

// PointNetConfig describes a vanilla PointNet instance.
type PointNetConfig struct {
	Classes   int
	BaseWidth int // first MLP width; the embedding is 4× this; default 16
	// Dropout follows the same convention as the other models (0 = default
	// 0.3, negative disables).
	Dropout float64
	Seed    int64
}

// NewPointNetVanilla constructs the network.
func NewPointNetVanilla(cfg PointNetConfig) (*PointNetVanilla, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("model: need ≥2 classes, got %d", cfg.Classes)
	}
	if cfg.BaseWidth == 0 {
		cfg.BaseWidth = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	embed := 4 * cfg.BaseWidth
	net := &PointNetVanilla{
		MLP: nn.NewSharedMLP("pn.mlp", []int{3, cfg.BaseWidth, 2 * cfg.BaseWidth, embed}, rng),
	}
	net.Head = nn.NewSequential(
		nn.NewLinear("pn.head.0", embed, embed/2, rng),
		&nn.ReLU{},
		&nn.Dropout{P: dropoutP(cfg.Dropout), Rng: rand.New(rand.NewSource(cfg.Seed + 12))},
		nn.NewLinear("pn.head.1", embed/2, cfg.Classes, rng),
	)
	return net, nil
}

// Params returns all trainable parameters.
func (n *PointNetVanilla) Params() []*nn.Param {
	return append(n.MLP.Params(), n.Head.Params()...)
}

// Forward runs one cloud through the network; logits have a single row.
//
//edgepc:hotpath
func (n *PointNetVanilla) Forward(cloud *geom.Cloud, trace *Trace, train bool) (*Output, error) {
	if cloud.Len() == 0 {
		return nil, fmt.Errorf("model: empty cloud")
	}
	x := coordMatrix(nil, cloud.Points)
	var feats *tensor.Matrix
	start := time.Now()
	feats, err := n.MLP.Forward(x, train)
	if err != nil {
		return nil, err
	}
	trace.Add(StageRecord{
		Stage: StageFeature, Layer: 0, Algo: "shared-mlp",
		Q: cloud.Len(), CIn: 3, COut: feats.Cols, Dur: time.Since(start),
	})
	vals, argmax := tensor.ColMax(feats)
	pooled, err := tensor.FromSlice(1, len(vals), vals)
	if err != nil {
		return nil, err
	}
	logits, err := n.Head.Forward(pooled, train)
	if err != nil {
		return nil, err
	}
	if train {
		n.rows = feats.Rows
		n.argmax = argmax
		n.embedCols = feats.Cols
	}
	return &Output{Logits: logits, Labels: cloud.Labels}, nil
}

// Backward propagates the loss gradient.
func (n *PointNetVanilla) Backward(gradLogits *tensor.Matrix) error {
	if n.argmax == nil {
		return fmt.Errorf("model: backward before forward(train)")
	}
	g, err := n.Head.Backward(gradLogits)
	if err != nil {
		return err
	}
	full := tensor.New(n.rows, n.embedCols)
	for c, v := range g.Row(0) {
		full.Data[int(n.argmax[c])*n.embedCols+c] += v
	}
	_, err = n.MLP.Backward(full)
	return err
}
