package model

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// PointNetVanilla is the original PointNet classifier (Qi et al. 2017): a
// per-point shared MLP followed by global max pooling and a dense head. It
// has *no sampling and no neighbor search* — which makes it the control
// architecture for the paper's Fig. 3 argument: the bottleneck the paper
// attacks exists only in hierarchical models. A vanilla-PointNet trace
// contains feature stages exclusively. Like the hierarchical models it is a
// three-stage list compiled into the shared Graph executor.
type PointNetVanilla struct {
	MLP  *nn.Sequential // per-point feature extractor
	Head *nn.Sequential // classifier over the pooled global feature

	graph *Graph
}

// PointNetConfig describes a vanilla PointNet instance.
type PointNetConfig struct {
	Classes   int
	BaseWidth int // first MLP width; the embedding is 4× this; default 16
	// Dropout follows the same convention as the other models (0 = default
	// 0.3, negative disables).
	Dropout float64
	Seed    int64
}

// NewPointNetVanilla constructs the network.
func NewPointNetVanilla(cfg PointNetConfig) (*PointNetVanilla, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("model: need ≥2 classes, got %d", cfg.Classes)
	}
	if cfg.BaseWidth == 0 {
		cfg.BaseWidth = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	embed := 4 * cfg.BaseWidth
	net := &PointNetVanilla{
		MLP: nn.NewSharedMLP("pn.mlp", []int{3, cfg.BaseWidth, 2 * cfg.BaseWidth, embed}, rng),
	}
	net.Head = nn.NewSequential(
		nn.NewLinear("pn.head.0", embed, embed/2, rng),
		&nn.ReLU{},
		&nn.Dropout{P: dropoutP(cfg.Dropout), Rng: rand.New(rand.NewSource(cfg.Seed + 12))},
		nn.NewLinear("pn.head.1", embed/2, cfg.Classes, rng),
	)
	g, err := Compile(GraphSpec{Stages: []Stage{
		&mlpStage{name: "feat", mlp: net.MLP, record: true, traceLayer: 0},
		&globalPoolStage{name: "pool"},
		&mlpStage{name: "head", mlp: net.Head},
	}})
	if err != nil {
		return nil, err
	}
	net.graph = g
	return net, nil
}

// Params returns all trainable parameters.
func (n *PointNetVanilla) Params() []*nn.Param { return n.graph.Params() }

// Forward runs one cloud through the network; logits have a single row.
func (n *PointNetVanilla) Forward(cloud *geom.Cloud, trace *Trace, train bool) (*Output, error) {
	return n.graph.Forward(cloud, trace, train)
}

// Backward propagates the loss gradient.
func (n *PointNetVanilla) Backward(gradLogits *tensor.Matrix) error {
	return n.graph.Backward(gradLogits)
}
