package model

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// Failure-injection tests: degenerate inputs a deployed pipeline will
// eventually see (LiDAR dropouts, duplicate returns, tiny clouds) must not
// crash either architecture in either configuration.

func degenerateClouds() map[string]*geom.Cloud {
	identical := geom.NewCloud(32, 0)
	for i := range identical.Points {
		identical.Points[i] = geom.Point3{X: 1, Y: 2, Z: 3}
	}
	identical.Labels = make([]int32, 32)

	line := geom.NewCloud(32, 0)
	for i := range line.Points {
		line.Points[i] = geom.Point3{X: float64(i)}
	}
	line.Labels = make([]int32, 32)

	tiny := geom.NewCloud(3, 0)
	tiny.Points = []geom.Point3{{X: 0}, {X: 1}, {Y: 1}}
	tiny.Labels = []int32{0, 1, 0}

	duplicates := geom.NewCloud(16, 0)
	for i := range duplicates.Points {
		duplicates.Points[i] = geom.Point3{X: float64(i % 3)}
	}
	duplicates.Labels = make([]int32, 16)

	return map[string]*geom.Cloud{
		"identical":  identical,
		"collinear":  line,
		"tiny":       tiny,
		"duplicates": duplicates,
	}
}

func TestPointNetPPDegenerateInputs(t *testing.T) {
	for name, cloud := range degenerateClouds() {
		for _, morton := range []bool{false, true} {
			cfg := tinyPPConfig(morton)
			net, err := NewPointNetPP(cfg)
			if err != nil {
				t.Fatal(err)
			}
			out, err := net.Forward(cloud, nil, false)
			if err != nil {
				t.Fatalf("%s morton=%v: %v", name, morton, err)
			}
			if out.Logits.Rows != cloud.Len() {
				t.Fatalf("%s morton=%v: %d logit rows", name, morton, out.Logits.Rows)
			}
			for _, v := range out.Logits.Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s morton=%v: non-finite logits", name, morton)
				}
			}
		}
	}
}

func TestDGCNNDegenerateInputs(t *testing.T) {
	for name, cloud := range degenerateClouds() {
		for _, morton := range []bool{false, true} {
			net, err := NewDGCNN(tinyDGCNNConfig(morton, TaskSegmentation))
			if err != nil {
				t.Fatal(err)
			}
			out, err := net.Forward(cloud, nil, false)
			if err != nil {
				t.Fatalf("%s morton=%v: %v", name, morton, err)
			}
			for _, v := range out.Logits.Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s morton=%v: non-finite logits", name, morton)
				}
			}
		}
	}
}

func TestTrainOnDegenerateCloud(t *testing.T) {
	// Backward through duplicate/identical geometry must stay finite.
	cloud := degenerateClouds()["duplicates"]
	cfg := tinyPPConfig(true)
	net, err := NewPointNetPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.Forward(cloud, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	grad := out.Logits.Clone()
	for i := range grad.Data {
		grad.Data[i] = 0.01
	}
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Params() {
		for _, v := range p.Grad.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("non-finite gradient in %s", p.Name)
			}
		}
	}
}

func TestKClampedWhenCloudSmallerThanK(t *testing.T) {
	cloud := degenerateClouds()["tiny"] // 3 points, K configured as 4
	net, err := NewDGCNN(tinyDGCNNConfig(false, TaskClassification))
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := net.Forward(cloud, trace, false); err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.Records {
		if r.Stage == StageNeighbor && r.K > cloud.Len() {
			t.Fatalf("k=%d exceeds %d points", r.K, cloud.Len())
		}
	}
}
