package model

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file is the stage-graph executor: the one place that owns the
// machinery every architecture used to hand-roll — the level stack, the
// inference workspace lifecycle, structurization, per-node trace spans, and
// the neighbor-reuse cache. A network is a declarative list of Stages
// compiled into a Graph; PointNet++, DGCNN and vanilla PointNet are all
// thin wrappers over one (see pointnet2.go, dgcnn.go, pointnet.go). New
// sampler/searcher variants plug in as new Stage implementations without
// touching the executor or the existing models.

// Stage is one node of a compiled model graph. Forward advances the
// execution state (typically consuming Exec.Chain and/or the level stack and
// leaving its output in Exec.Chain); Backward runs during the reversed stage
// walk and propagates Exec state gradients. Stages that carry trainable
// weights expose them via Params (in forward execution order, the order
// nn.ShareParams relies on).
//
// A Stage that serves eval activations from the shared workspace should also
// implement nn.WorkspaceUser; the Graph attaches its workspace to every such
// stage exactly once, at first eval use.
type Stage interface {
	Name() string
	Forward(x *Exec) error
	Backward(x *Exec) error
	Params() []*nn.Param
}

// Exec is the mutable per-frame execution state a Graph threads through its
// stages. It persists across frames (slices are truncated, not freed), which
// is what keeps the steady-state inference path allocation-free.
type Exec struct {
	ws    *tensor.Workspace
	trace *Trace
	train bool

	// be is the frame's compute backend: the graph's configured backend on
	// eval frames, always the reference (naive) kernels when training —
	// gradients must see exact float32 numerics.
	be tensor.Backend

	// reuse carries neighbor indexes across stages under the graph's
	// ReusePolicy; reset at each frame start.
	reuse   *core.ReuseCache
	reuseOn bool

	// levels is the resolution stack: levels[0] is the (possibly
	// structurized) input; sampling stages push, and the headers are
	// recycled across frames.
	levels []*level

	// chain is the activation flowing from stage to stage.
	chain *tensor.Matrix

	// taps are stage outputs parked for a later fusion stage (DGCNN's skip
	// concatenation).
	taps []*tensor.Matrix

	// Backward state: grad is the chain gradient, dlevel accumulates
	// per-level feature gradients, tapGrads the per-tap gradients.
	grad     *tensor.Matrix
	dlevel   []*tensor.Matrix
	tapGrads []*tensor.Matrix
}

// Workspace returns the frame's inference workspace (nil when training).
func (x *Exec) Workspace() *tensor.Workspace { return x.ws }

// Backend returns the frame's compute backend (never nil: the reference
// backend when none is configured or when training).
func (x *Exec) Backend() tensor.Backend { return x.be }

// Trace returns the frame's trace (possibly nil).
func (x *Exec) Trace() *Trace { return x.trace }

// Train reports whether this is a training forward.
func (x *Exec) Train() bool { return x.train }

// Reuse returns the graph's neighbor-reuse cache.
func (x *Exec) Reuse() *core.ReuseCache { return x.reuse }

// Chain returns the activation flowing out of the previous stage.
func (x *Exec) Chain() *tensor.Matrix { return x.chain }

// SetChain hands an activation to the next stage.
func (x *Exec) SetChain(m *tensor.Matrix) { x.chain = m }

// LevelCount returns the current depth of the level stack.
func (x *Exec) LevelCount() int { return len(x.levels) }

// top returns the innermost level.
func (x *Exec) top() *level { return x.levels[len(x.levels)-1] }

// pushLevel appends a zeroed level to the stack, recycling the header
// allocated for the same position in an earlier frame when possible.
func (x *Exec) pushLevel() *level {
	if len(x.levels) < cap(x.levels) {
		x.levels = x.levels[:len(x.levels)+1]
		if lv := x.levels[len(x.levels)-1]; lv != nil {
			*lv = level{}
			return lv
		}
	} else {
		x.levels = append(x.levels, nil)
	}
	lv := &level{}
	x.levels[len(x.levels)-1] = lv
	return lv
}

// setLevelGrad stores the gradient of level i's features, growing the
// accumulator stack as needed.
func (x *Exec) setLevelGrad(i int, g *tensor.Matrix) {
	for len(x.dlevel) <= i {
		x.dlevel = append(x.dlevel, nil)
	}
	x.dlevel[i] = g
}

// addLevelGrad accumulates g into level i's feature gradient.
func (x *Exec) addLevelGrad(i int, g *tensor.Matrix) {
	for len(x.dlevel) <= i {
		x.dlevel = append(x.dlevel, nil)
	}
	if x.dlevel[i] == nil {
		x.dlevel[i] = g
		return
	}
	dst := x.dlevel[i].Data
	for j, v := range g.Data {
		dst[j] += v
	}
}

// GraphSpec declares a model graph ahead of compilation.
type GraphSpec struct {
	// Stages in execution order.
	Stages []Stage
	// Structurize, when non-nil, Morton-orders the input cloud before the
	// first stage (the EdgePC configurations).
	Structurize *core.StructurizeOptions
	// ExtraFeatDim is the per-point input feature width beyond coordinates.
	ExtraFeatDim int
	// Reuse is the neighbor-index reuse policy shared by all stages.
	Reuse core.ReusePolicy
	// Backend selects the compute backend eval frames dispatch their kernels
	// through (nil → the reference kernels). Training frames always run the
	// reference kernels regardless.
	Backend tensor.Backend
}

// Graph is a compiled model: the executor for a declarative stage list. It
// owns the shared forward/backward machinery exactly once — input
// structurization, the level stack, the inference workspace, per-node trace
// spans, and the neighbor-reuse cache.
//
// Concurrency: a Graph is NOT safe for concurrent use — Forward mutates the
// per-graph workspace and stage caches. Eval-mode Forward (train=false) only
// *reads* the trainable weights, so weight-sharing replicas
// (pipeline.Replicas / nn.ShareParams) may run concurrently, one replica per
// goroutine (internal/serve). Training mutates weights and must own them
// exclusively.
type Graph struct {
	spec   GraphSpec
	params []*nn.Param

	// ws is the inference workspace: lazily created at the first eval
	// Forward, attached to every workspace-capable stage, and Reset at each
	// eval frame start so frame N+1 reuses frame N's buffers. The training
	// path never touches it.
	ws *tensor.Workspace

	x Exec

	// trained latches after a training forward so Backward can verify its
	// precondition (stage caches carry everything else it needs).
	trained bool
}

// Compile validates a spec and builds its executor.
func Compile(spec GraphSpec) (*Graph, error) {
	if len(spec.Stages) == 0 {
		return nil, fmt.Errorf("model: graph needs at least one stage")
	}
	g := &Graph{spec: spec}
	for _, s := range spec.Stages {
		g.params = append(g.params, s.Params()...)
	}
	g.x.reuse = core.NewReuseCache(spec.Reuse)
	g.x.reuseOn = spec.Reuse.Distance > 0
	return g, nil
}

// Stages returns the compiled stage list (do not mutate).
func (g *Graph) Stages() []Stage { return g.spec.Stages }

// Params returns all trainable parameters in stage order.
func (g *Graph) Params() []*nn.Param { return g.params }

// workspace lazily creates the shared inference workspace, attaches it to
// every stage that can serve activations from one, and starts a fresh frame.
// Returns nil in training mode. This is the single owner of the
// workspace-vs-training decision that each model used to duplicate.
func (g *Graph) workspace(train bool) *tensor.Workspace {
	if train {
		return nil
	}
	if g.ws == nil {
		g.ws = tensor.NewWorkspace()
		for _, s := range g.spec.Stages {
			if u, ok := s.(nn.WorkspaceUser); ok {
				u.SetWorkspace(g.ws)
			}
			// Same single attach site for the compute backend: stages (and
			// their layer stacks) receive it once, at first eval use.
			if u, ok := s.(nn.BackendUser); ok && g.spec.Backend != nil {
				u.SetBackend(g.spec.Backend)
			}
		}
	}
	g.ws.Reset()
	return g.ws
}

// backend resolves the compute backend for a frame: the configured backend on
// eval frames, the reference kernels when training or unconfigured.
func (g *Graph) backend(train bool) tensor.Backend {
	if train || g.spec.Backend == nil {
		return tensor.Naive()
	}
	return g.spec.Backend
}

// Forward runs one cloud through the compiled graph and returns logits
// aligned with Output.Labels. Eval frames (train=false) serve all
// intermediate activations from the per-graph workspace; the returned logits
// are cloned out of it, so an Output remains valid across subsequent Forward
// calls.
//
//edgepc:hotpath
func (g *Graph) Forward(cloud *geom.Cloud, trace *Trace, train bool) (*Output, error) {
	if cloud.Len() == 0 {
		return nil, fmt.Errorf("model: empty cloud")
	}
	x := &g.x
	x.ws = g.workspace(train)
	x.be = g.backend(train)
	x.trace = trace
	x.train = train
	x.levels = x.levels[:0]
	x.taps = x.taps[:0]
	x.chain = nil
	x.reuse.Reset()

	pts := cloud.Points
	feat, featDim := cloud.Feat, cloud.FeatDim
	labels := cloud.Labels
	var perm []int
	sorted := false
	if g.spec.Structurize != nil {
		start := time.Now()
		s, err := core.Structurize(cloud, *g.spec.Structurize)
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		trace.Add(StageRecord{Stage: StageStructurize, Layer: 0, Algo: "morton", N: cloud.Len(), Dur: dur})
		if trace != nil {
			trace.AddSpan(Span{Node: "structurize", Layer: -1, Dur: dur, Rec0: len(trace.Records) - 1, Rec1: len(trace.Records)})
		}
		pts = s.Cloud.Points
		feat, featDim = s.Cloud.Feat, s.Cloud.FeatDim
		labels = s.Cloud.Labels
		perm = s.Perm
		sorted = true
	}
	feats, err := inputFeatures(x.ws, x.be, pts, feat, featDim, g.spec.ExtraFeatDim)
	if err != nil {
		return nil, err
	}
	lv := x.pushLevel()
	lv.pts, lv.feats, lv.mortonSorted = pts, feats, sorted
	x.chain = feats

	for _, s := range g.spec.Stages {
		rec0 := 0
		if trace != nil {
			rec0 = len(trace.Records)
		}
		start := time.Now()
		if err := s.Forward(x); err != nil {
			return nil, err
		}
		if trace != nil {
			trace.AddSpan(Span{Node: s.Name(), Layer: stageLayer(s), Dur: time.Since(start), Rec0: rec0, Rec1: len(trace.Records)})
		}
	}

	logits := x.chain
	if x.ws != nil && x.ws.Owns(logits) {
		// Detach the result from the workspace so the Output survives the
		// next frame's Reset.
		//edgepc:lint-ignore hotpathalloc deliberate: the Output contract requires logits to outlive the frame
		logits = logits.Clone()
	}
	if train {
		g.trained = true
	}
	return &Output{Logits: logits, Labels: labels, Perm: perm}, nil
}

// layered is implemented by stages tied to a module index; other stages
// report layer -1 in their spans.
type layered interface{ layer() int }

func stageLayer(s Stage) int {
	if l, ok := s.(layered); ok {
		return l.layer()
	}
	return -1
}

// Backward propagates the loss gradient (w.r.t. Forward's logits) through
// the graph by walking the stage list in reverse, accumulating parameter
// gradients.
func (g *Graph) Backward(gradLogits *tensor.Matrix) error {
	if !g.trained {
		return fmt.Errorf("model: backward before forward(train)")
	}
	x := &g.x
	x.grad = gradLogits
	x.dlevel = x.dlevel[:0]
	x.tapGrads = x.tapGrads[:0]
	for i := len(g.spec.Stages) - 1; i >= 0; i-- {
		if err := g.spec.Stages[i].Backward(x); err != nil {
			return err
		}
	}
	x.grad = nil
	return nil
}
