package model

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file adapts the network modules (SAModule, FPModule, EdgeConvModule,
// plain MLP stacks, global pooling) to the Stage interface so the three
// architectures reduce to declarative stage lists over one Graph executor.
// Each stage's Forward is individually hotpath-annotated: the executor
// dispatches through the Stage interface, which the hotpathalloc analyzer
// deliberately does not traverse, so the contract is restated per
// implementation.

// saStage wraps a PointNet++ SetAbstraction module: it consumes the
// innermost level and pushes the sampled one.
type saStage struct {
	name string
	idx  int
	m    *SAModule
}

func (s *saStage) Name() string                      { return s.name }
func (s *saStage) layer() int                        { return s.idx }
func (s *saStage) Params() []*nn.Param               { return s.m.MLP.Params() }
func (s *saStage) SetWorkspace(ws *tensor.Workspace) { s.m.MLP.SetWorkspace(ws) }
func (s *saStage) SetBackend(be tensor.Backend)      { s.m.MLP.SetBackend(be) }

//edgepc:hotpath
func (s *saStage) Forward(x *Exec) error {
	parent := x.top()
	next := x.pushLevel()
	if err := s.m.forward(parent, next, s.idx, x); err != nil {
		return err
	}
	x.chain = next.feats
	return nil
}

func (s *saStage) Backward(x *Exec) error {
	dParent, err := s.m.backward(x.dlevel[s.idx+1])
	if err != nil {
		return err
	}
	x.addLevelGrad(s.idx, dParent)
	return nil
}

// fpStage wraps a PointNet++ FeaturePropagation module: it interpolates the
// chain activation (the coarse features) onto the matching finer level and
// fuses the skip features.
type fpStage struct {
	name  string
	idx   int // execution index; produces level depth−1−idx
	depth int
	m     *FPModule
}

func (s *fpStage) Name() string                      { return s.name }
func (s *fpStage) layer() int                        { return s.idx }
func (s *fpStage) Params() []*nn.Param               { return s.m.MLP.Params() }
func (s *fpStage) SetWorkspace(ws *tensor.Workspace) { s.m.MLP.SetWorkspace(ws) }
func (s *fpStage) SetBackend(be tensor.Backend)      { s.m.MLP.SetBackend(be) }

//edgepc:hotpath
func (s *fpStage) Forward(x *Exec) error {
	fine := x.levels[s.depth-1-s.idx]
	coarse := x.levels[s.depth-s.idx]
	prev := x.chain
	out, err := s.m.forward(fine, coarse, prev, s.idx, x)
	if err != nil {
		return err
	}
	// After interpolation the coarse features (the previous FP output, or
	// the deepest SA level at idx 0) are dead, and the fine skip features
	// were consumed by the concat — recycle both. wsPut skips buffers the
	// workspace no longer lends, so aliases are safe.
	if x.ws != nil {
		if prev != out {
			wsPut(x.ws, prev)
		}
		if fine.feats != out {
			wsPut(x.ws, fine.feats)
			fine.feats = nil
		}
	}
	x.chain = out
	return nil
}

func (s *fpStage) Backward(x *Exec) error {
	dSkip, dCoarse, err := s.m.backward(x.grad)
	if err != nil {
		return err
	}
	x.setLevelGrad(s.depth-1-s.idx, dSkip)
	if s.idx == 0 {
		// The first-executed FP consumed the deepest SA output directly; its
		// coarse gradient belongs to that level, not to an earlier FP.
		x.setLevelGrad(s.depth, dCoarse)
		x.grad = nil
	} else {
		x.grad = dCoarse
	}
	return nil
}

// ecStage wraps a DGCNN EdgeConv module: same point set in and out, output
// features parked as a tap for the later fusion stage.
type ecStage struct {
	name string
	idx  int
	m    *EdgeConvModule
}

func (s *ecStage) Name() string                      { return s.name }
func (s *ecStage) layer() int                        { return s.idx }
func (s *ecStage) Params() []*nn.Param               { return s.m.MLP.Params() }
func (s *ecStage) SetWorkspace(ws *tensor.Workspace) { s.m.MLP.SetWorkspace(ws) }
func (s *ecStage) SetBackend(be tensor.Backend)      { s.m.MLP.SetBackend(be) }

//edgepc:hotpath
func (s *ecStage) Forward(x *Exec) error {
	lv := x.top()
	next := x.pushLevel()
	if err := s.m.forward(lv, next, s.idx, x); err != nil {
		return err
	}
	if x.ws != nil && s.idx == 0 && next.feats != lv.feats {
		// The input features are dead once EC0 consumed them; the EC outputs
		// themselves stay alive for the skip concat.
		wsPut(x.ws, lv.feats)
	}
	//edgepc:lint-ignore hotpathalloc cap-guarded after the first frame; Exec persists the tap array
	x.taps = append(x.taps, next.feats)
	x.chain = next.feats
	return nil
}

func (s *ecStage) Backward(x *Exec) error {
	total := x.tapGrads[s.idx]
	if x.grad != nil {
		for j, v := range x.grad.Data {
			total.Data[j] += v
		}
	}
	g, err := s.m.backward(total)
	if err != nil {
		return err
	}
	x.grad = g
	return nil
}

// fuseStage concatenates all parked taps column-wise (DGCNN's skip
// aggregation before the embedding MLP).
type fuseStage struct {
	name string
	cols []int // backward cache: tap widths from the last training forward
}

func (s *fuseStage) Name() string        { return s.name }
func (s *fuseStage) Params() []*nn.Param { return nil }

//edgepc:hotpath
func (s *fuseStage) Forward(x *Exec) error {
	outs := x.taps
	var fused *tensor.Matrix
	if x.ws != nil && len(outs) > 1 {
		// Fill the concatenation directly instead of chaining pairwise
		// Concats: one buffer, one copy per tap.
		total := 0
		for _, o := range outs {
			total += o.Cols
		}
		fused = x.ws.Get(outs[0].Rows, total)
		off := 0
		for _, o := range outs {
			for r := 0; r < o.Rows; r++ {
				copy(fused.Row(r)[off:off+o.Cols], o.Row(r))
			}
			off += o.Cols
		}
		for _, o := range outs {
			wsPut(x.ws, o)
		}
	} else {
		fused = outs[0]
		var err error
		for _, o := range outs[1:] {
			//edgepc:lint-ignore hotpathalloc training / no-workspace fallback; the eval branch above fills one workspace buffer
			fused, err = tensor.Concat(fused, o)
			if err != nil {
				return err
			}
		}
	}
	if x.train {
		s.cols = s.cols[:0]
		for _, o := range outs {
			//edgepc:lint-ignore hotpathalloc train-only backward cache
			s.cols = append(s.cols, o.Cols)
		}
	}
	//edgepc:lint-ignore workspacepair Exec.chain is frame-scoped; the next stage consumes and releases it
	x.chain = fused
	return nil
}

// Backward splits the fused gradient into per-tap parts for the ecStages.
func (s *fuseStage) Backward(x *Exec) error {
	if s.cols == nil {
		return fmt.Errorf("model: fuse backward before forward(train)")
	}
	g := x.grad
	x.tapGrads = x.tapGrads[:0]
	off := 0
	for _, c := range s.cols {
		part := tensor.New(g.Rows, c)
		for r := 0; r < g.Rows; r++ {
			copy(part.Row(r), g.Row(r)[off:off+c])
		}
		x.tapGrads = append(x.tapGrads, part)
		off += c
	}
	x.grad = nil
	return nil
}

// mlpStage runs a plain layer stack over the chain activation: the
// classification/segmentation heads, DGCNN's embedding MLP, and vanilla
// PointNet's per-point feature extractor. Stages that represent feature
// compute in the paper's breakdown set record to emit a StageFeature trace
// record.
type mlpStage struct {
	name       string
	mlp        *nn.Sequential
	record     bool
	traceLayer int
}

func (s *mlpStage) Name() string                      { return s.name }
func (s *mlpStage) Params() []*nn.Param               { return s.mlp.Params() }
func (s *mlpStage) SetWorkspace(ws *tensor.Workspace) { s.mlp.SetWorkspace(ws) }
func (s *mlpStage) SetBackend(be tensor.Backend)      { s.mlp.SetBackend(be) }

//edgepc:hotpath
func (s *mlpStage) Forward(x *Exec) error {
	in := x.chain
	var out *tensor.Matrix
	if s.record {
		cin := in.Cols
		dur, err := timed(func() error {
			var e error
			out, e = s.mlp.Forward(in, x.train)
			return e
		})
		if err != nil {
			return err
		}
		x.trace.Add(StageRecord{Stage: StageFeature, Layer: s.traceLayer, Algo: "shared-mlp", Q: in.Rows, CIn: cin, COut: out.Cols, Dur: dur})
	} else {
		var err error
		out, err = s.mlp.Forward(in, x.train)
		if err != nil {
			return err
		}
	}
	if x.ws != nil && out != in {
		wsPut(x.ws, in)
	}
	x.chain = out
	return nil
}

func (s *mlpStage) Backward(x *Exec) error {
	g, err := s.mlp.Backward(x.grad)
	if err != nil {
		return err
	}
	x.grad = g
	return nil
}

// globalPoolStage max-pools the chain activation over all rows into a single
// global descriptor (classification networks), caching the argmax for the
// backward routing.
type globalPoolStage struct {
	name string
	// backward cache
	rows, cols int
	argmax     []int32
}

func (s *globalPoolStage) Name() string        { return s.name }
func (s *globalPoolStage) Params() []*nn.Param { return nil }

//edgepc:hotpath
func (s *globalPoolStage) Forward(x *Exec) error {
	in := x.chain
	vals, argmax := tensor.ColMax(in)
	wsPut(x.ws, in)
	pooled, err := tensor.FromSlice(1, len(vals), vals)
	if err != nil {
		return err
	}
	if x.train {
		s.rows, s.cols, s.argmax = in.Rows, in.Cols, argmax
	}
	x.chain = pooled
	return nil
}

// Backward routes the pooled gradient back to the argmax rows.
func (s *globalPoolStage) Backward(x *Exec) error {
	if s.argmax == nil {
		return fmt.Errorf("model: pool backward before forward(train)")
	}
	full := tensor.New(s.rows, s.cols)
	for c, v := range x.grad.Row(0) {
		full.Data[int(s.argmax[c])*s.cols+c] += v
	}
	x.grad = full
	return nil
}
