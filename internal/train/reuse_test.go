package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/pipeline"
)

// TestPPReuseAccuracyEnvelope trains the same PointNet++ segmentation task
// under S+N twice — neighbor search at every SA layer vs. the generalized
// §5.2.3 reuse at distance 1 — and checks the reuse approximation stays
// inside the paper's few-percent accuracy envelope (the paper reports <2%
// at full scale; this laptop-scale run allows proportionally more noise).
func TestPPReuseAccuracyEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two networks")
	}
	ds := dataset.NewSceneSegmentation(32, 128, "s3dis", 5)
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	w := pipeline.Workload{
		ID: "reuse-env", Arch: pipeline.ArchPointNetPP,
		Classes: ds.Classes(), K: 6,
	}
	accs := map[int]float64{}
	for _, dist := range []int{0, 1} {
		opts := pipeline.Options{BaseWidth: 8, Depth: 2, Seed: 3, PPReuseDistance: dist}
		net, err := pipeline.NewNet(w, pipeline.SN, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(net, ds, trainIdx, testIdx, Config{Epochs: 12, LR: 5e-3, BatchSize: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		accs[dist] = res.TestAcc
		t.Logf("distance %d: test accuracy %.4f", dist, res.TestAcc)
	}
	chance := 1.0 / float64(ds.Classes())
	if accs[1] < chance+0.1 {
		t.Fatalf("reuse net barely above chance: %.4f (chance %.4f)", accs[1], chance)
	}
	if accs[1] < accs[0]-0.05 {
		t.Fatalf("reuse accuracy %.4f fell more than 5pp below search accuracy %.4f", accs[1], accs[0])
	}
}
