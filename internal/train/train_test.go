package train

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/pipeline"
)

// tinyClsDataset shrinks the classification dataset for fast training tests.
func tinyClsDataset(items int) *dataset.Classification {
	d := dataset.NewClassification(items, 42)
	d.Points = 96
	return d
}

// triCls is a 3-class, clearly separable classification task (sphere / box /
// helix) small enough to learn within a test-time budget.
type triCls struct{ items, points int }

var triKinds = []geom.ShapeKind{geom.ShapeSphere, geom.ShapeBox, geom.ShapeHelix}

func (d *triCls) Len() int     { return d.items }
func (d *triCls) Classes() int { return len(triKinds) }
func (d *triCls) Name() string { return "tri-cls" }
func (d *triCls) At(i int) (*dataset.Sample, error) {
	c := geom.GenerateShape(triKinds[i%len(triKinds)], geom.ShapeOptions{
		N: d.points, Noise: 0.02, DensitySkew: 0.4, Seed: int64(100 + i),
	})
	return &dataset.Sample{Cloud: c, Label: int32(i % len(triKinds))}, nil
}

func TestTrainingReducesLossAndLearns(t *testing.T) {
	// A DGCNN classifier on 3 easily separable classes must beat chance
	// clearly after a short training run — this is the substrate of the
	// Fig. 14 accuracy experiment.
	ds := &triCls{items: 36, points: 96}
	w := pipeline.Workload{Arch: pipeline.ArchDGCNN, Task: model.TaskClassification, Classes: ds.Classes(), K: 6}
	net, err := pipeline.Build(w, pipeline.Baseline, pipeline.Options{BaseWidth: 12, Modules: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	res, err := Run(net, ds, trainIdx, testIdx, Config{Epochs: 8, LR: 2e-3, BatchSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
	chance := 1.0 / float64(ds.Classes())
	if res.TestAcc < chance+0.25 {
		t.Fatalf("test accuracy %.3f barely above chance %.3f", res.TestAcc, chance)
	}
}

func TestTrainingWithMortonApproximations(t *testing.T) {
	// Retraining with the approximations in the loop (the paper's §5.3
	// requirement) must also converge.
	ds := tinyClsDataset(24)
	w := pipeline.Workload{Arch: pipeline.ArchDGCNN, Task: model.TaskClassification, Classes: ds.Classes(), K: 4}
	net, err := pipeline.Build(w, pipeline.SN, pipeline.Options{BaseWidth: 8, Modules: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	res, err := Run(net, ds, trainIdx, testIdx, Config{Epochs: 4, LR: 2e-3, BatchSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Fatalf("morton training diverged: %v", res.TrainLoss)
	}
}

func TestSegmentationTraining(t *testing.T) {
	ds := dataset.NewPartSegmentation(8, 7)
	ds.Points = 128
	w := pipeline.Workload{Arch: pipeline.ArchPointNetPP, Task: model.TaskSegmentation, Classes: ds.Classes(), K: 4}
	net, err := pipeline.Build(w, pipeline.Baseline, pipeline.Options{BaseWidth: 4, Depth: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	res, err := Run(net, ds, trainIdx, testIdx, Config{Epochs: 3, LR: 2e-3, BatchSize: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Fatalf("segmentation training diverged: %v", res.TrainLoss)
	}
	if res.TestIoU < 0 || res.TestIoU > 1 {
		t.Fatalf("mIoU = %v", res.TestIoU)
	}
}

func TestEvaluateCounts(t *testing.T) {
	ds := tinyClsDataset(6)
	w := pipeline.Workload{Arch: pipeline.ArchDGCNN, Task: model.TaskClassification, Classes: ds.Classes(), K: 4}
	net, err := pipeline.Build(w, pipeline.Baseline, pipeline.Options{BaseWidth: 4, Modules: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, miou, err := Evaluate(net, ds, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 || miou < 0 || miou > 1 {
		t.Fatalf("acc=%v miou=%v", acc, miou)
	}
}

func TestTrainingWithAugmentation(t *testing.T) {
	ds := &triCls{items: 12, points: 96}
	w := pipeline.Workload{Arch: pipeline.ArchDGCNN, Task: model.TaskClassification, Classes: ds.Classes(), K: 4}
	net, err := pipeline.Build(w, pipeline.Baseline, pipeline.Options{BaseWidth: 8, Modules: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	augOpts := geom.DefaultAugmentOptions()
	calls := 0
	res, err := Run(net, ds, trainIdx, testIdx, Config{
		Epochs: 2, LR: 2e-3, BatchSize: 3, Seed: 4,
		Augment: func(c *geom.Cloud, rng *rand.Rand) *geom.Cloud {
			calls++
			return geom.Augment(c, augOpts, rng)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2*len(trainIdx) {
		t.Fatalf("augment called %d times, want %d", calls, 2*len(trainIdx))
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*1.2 {
		t.Fatalf("augmented training diverged: %v", res.TrainLoss)
	}
}

func TestKeepBestRestoresBestWeights(t *testing.T) {
	// With KeepBest, the final test accuracy can never be worse than any
	// per-epoch accuracy the run observed.
	ds := &triCls{items: 18, points: 96}
	w := pipeline.Workload{Arch: pipeline.ArchDGCNN, Task: model.TaskClassification, Classes: ds.Classes(), K: 4}
	net, err := pipeline.Build(w, pipeline.Baseline, pipeline.Options{BaseWidth: 8, Modules: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	best := -1.0
	res, err := Run(net, ds, trainIdx, testIdx, Config{
		Epochs: 5, LR: 3e-3, BatchSize: 4, Seed: 2, KeepBest: true,
		Progress: func(epoch int, loss, acc float64) {
			if acc > best {
				best = acc
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < best-1e-9 {
		t.Fatalf("final accuracy %.3f below best observed %.3f despite KeepBest", res.TestAcc, best)
	}
}

func TestLRDecay(t *testing.T) {
	ds := tinyClsDataset(4)
	w := pipeline.Workload{Arch: pipeline.ArchDGCNN, Task: model.TaskClassification, Classes: ds.Classes(), K: 4}
	net, err := pipeline.Build(w, pipeline.Baseline, pipeline.Options{BaseWidth: 4, Modules: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Run with strong decay: must complete and still reduce loss vs epoch 0
	// (a smoke check that the schedule is applied and harmless).
	res, err := Run(net, ds, []int{0, 1, 2}, []int{3}, Config{
		Epochs: 3, LR: 2e-3, LRDecay: 0.5, BatchSize: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainLoss) != 3 {
		t.Fatalf("loss history %v", res.TrainLoss)
	}
}

func TestProgressCallback(t *testing.T) {
	ds := tinyClsDataset(4)
	w := pipeline.Workload{Arch: pipeline.ArchDGCNN, Task: model.TaskClassification, Classes: ds.Classes(), K: 4}
	net, err := pipeline.Build(w, pipeline.Baseline, pipeline.Options{BaseWidth: 4, Modules: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, err = Run(net, ds, []int{0, 1, 2}, []int{3}, Config{
		Epochs: 2, LR: 1e-3, BatchSize: 2, Seed: 1,
		Progress: func(epoch int, loss, acc float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("progress called %d times, want 2", calls)
	}
}
