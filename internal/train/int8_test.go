package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// TestInt8AccuracyEnvelope is the accuracy gate for the quantized backend:
// train a PointNet++ segmentation net in float32 (training always runs the
// reference kernels), share the trained weights into a net built on the int8
// backend, and require its test accuracy within 2 percentage points of the
// float32 evaluation — the envelope the backend's documentation promises.
// Sharing weights (rather than retraining) isolates the quantization error:
// both nets evaluate the exact same parameters.
func TestInt8AccuracyEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a network")
	}
	ds := dataset.NewSceneSegmentation(32, 128, "s3dis", 5)
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	w := pipeline.Workload{
		ID: "int8-env", Arch: pipeline.ArchPointNetPP,
		Classes: ds.Classes(), K: 6,
	}
	opts := pipeline.Options{BaseWidth: 8, Depth: 2, Seed: 3}
	net, err := pipeline.NewNet(w, pipeline.SN, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, ds, trainIdx, testIdx, Config{Epochs: 12, LR: 5e-3, BatchSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(ds.Classes())
	if res.TestAcc < chance+0.1 {
		t.Fatalf("float32 net barely above chance: %.4f (chance %.4f)", res.TestAcc, chance)
	}

	qopts := opts
	qopts.Backend = tensor.BackendInt8
	qnet, err := pipeline.NewNet(w, pipeline.SN, qopts)
	if err != nil {
		t.Fatal(err)
	}
	// ShareParams re-points the int8 net's Param.Value matrices at the trained
	// ones; the backend calibrates its per-channel scales from them at first
	// use (fresh *Matrix pointers always miss its cache).
	if err := nn.ShareParams(qnet.Params(), net.Params()); err != nil {
		t.Fatal(err)
	}
	qacc, _, err := Evaluate(qnet, ds, testIdx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("float32 accuracy %.4f, int8 accuracy %.4f", res.TestAcc, qacc)
	if qacc < res.TestAcc-0.02 {
		t.Fatalf("int8 accuracy %.4f fell more than 2pp below float32 accuracy %.4f", qacc, res.TestAcc)
	}
}
