// Package train implements the retraining loop the paper's accuracy
// experiments require (§5.3, Fig. 14): the CNN models are trained *with the
// Morton approximations in the forward pass*, so the weights adapt to the
// sub-optimal samples and false neighbors.
package train

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/pipeline"
)

// Config controls a training run.
type Config struct {
	Epochs    int
	LR        float64
	BatchSize int // gradient-accumulation count before an optimizer step
	// LRDecay multiplies the learning rate after every epoch (0 or 1 keeps
	// it constant; PointNet-family recipes use ≈0.95 per epoch at scale).
	LRDecay float64
	// KeepBest evaluates on the test split after every epoch and restores
	// the best-scoring weights at the end (early-stopping-style selection;
	// costs one evaluation pass per epoch).
	KeepBest bool
	Seed     int64
	// Augment, when non-nil, transforms each training item's cloud before
	// the forward pass (evaluation never augments). geom.Augment with
	// geom.DefaultAugmentOptions is the standard recipe.
	Augment func(c *geom.Cloud, rng *rand.Rand) *geom.Cloud
	// Progress, when non-nil, is called after every epoch with the train
	// loss and current test accuracy.
	Progress func(epoch int, trainLoss, testAcc float64)
}

func (c *Config) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
}

// Result summarizes a training run.
type Result struct {
	TrainLoss []float64 // per epoch
	TestAcc   float64   // overall accuracy on the test split
	TestIoU   float64   // mean IoU (segmentation tasks; 0 for classification)
}

// Run trains net on the train split and evaluates on the test split. The
// task is inferred from the dataset: items with Label ≥ 0 are classification
// (one label per cloud), items with per-point labels are segmentation.
func Run(net pipeline.Net, ds dataset.Dataset, trainIdx, testIdx []int, cfg Config) (Result, error) {
	cfg.defaults()
	params := net.Params()
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	var res Result

	order := append([]int(nil), trainIdx...)
	bestAcc := -1.0
	var bestSnap [][]float32
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		steps := 0
		nn.ZeroGrads(params)
		pending := 0
		for _, idx := range order {
			s, err := ds.At(idx)
			if err != nil {
				return res, err
			}
			if cfg.Augment != nil {
				s = &dataset.Sample{Cloud: cfg.Augment(s.Cloud, rng), Label: s.Label}
			}
			loss, err := step(net, s)
			if err != nil {
				return res, fmt.Errorf("train: item %d: %w", idx, err)
			}
			epochLoss += loss
			steps++
			pending++
			if pending == cfg.BatchSize {
				scaleGrads(params, 1/float64(pending))
				opt.Step(params)
				nn.ZeroGrads(params)
				pending = 0
			}
		}
		if pending > 0 {
			scaleGrads(params, 1/float64(pending))
			opt.Step(params)
			nn.ZeroGrads(params)
		}
		if steps > 0 {
			epochLoss /= float64(steps)
		}
		res.TrainLoss = append(res.TrainLoss, epochLoss)
		if cfg.Progress != nil || cfg.KeepBest {
			acc, _, err := Evaluate(net, ds, testIdx)
			if err != nil {
				return res, err
			}
			if cfg.Progress != nil {
				cfg.Progress(epoch, epochLoss, acc)
			}
			if cfg.KeepBest && acc > bestAcc {
				bestAcc = acc
				bestSnap = snapshot(params, bestSnap)
			}
		}
		//edgepc:lint-ignore floateq LRDecay of exactly 1 is the documented no-decay sentinel
		if cfg.LRDecay > 0 && cfg.LRDecay != 1 {
			opt.LR *= cfg.LRDecay
		}
	}
	if cfg.KeepBest && bestSnap != nil {
		restore(params, bestSnap)
	}
	var err error
	res.TestAcc, res.TestIoU, err = Evaluate(net, ds, testIdx)
	return res, err
}

// snapshot copies parameter values, reusing buf when shaped right.
func snapshot(params []*nn.Param, buf [][]float32) [][]float32 {
	if len(buf) != len(params) {
		buf = make([][]float32, len(params))
	}
	for i, p := range params {
		if len(buf[i]) != len(p.Value.Data) {
			buf[i] = make([]float32, len(p.Value.Data))
		}
		copy(buf[i], p.Value.Data)
	}
	return buf
}

func restore(params []*nn.Param, snap [][]float32) {
	for i, p := range params {
		copy(p.Value.Data, snap[i])
	}
}

// step runs one forward/backward pass and returns the loss.
func step(net pipeline.Net, s *dataset.Sample) (float64, error) {
	out, err := net.Forward(s.Cloud, nil, true)
	if err != nil {
		return 0, err
	}
	labels := targetLabels(s, out)
	loss, grad, err := nn.CrossEntropy(out.Logits, labels)
	if err != nil {
		return 0, err
	}
	if err := net.Backward(grad); err != nil {
		return 0, err
	}
	return loss, nil
}

// targetLabels picks the supervision for a sample: the cloud-level label for
// classification (logits have one row) or the per-point labels (possibly
// permuted by structurization) for segmentation.
func targetLabels(s *dataset.Sample, out *model.Output) []int32 {
	if out.Logits.Rows == 1 {
		return []int32{s.Label}
	}
	return out.Labels
}

// Evaluate computes accuracy (and mIoU for segmentation) over the given
// indexes.
func Evaluate(net pipeline.Net, ds dataset.Dataset, idx []int) (acc, miou float64, err error) {
	var pred, truth []int32
	classes := ds.Classes()
	for _, i := range idx {
		s, err := ds.At(i)
		if err != nil {
			return 0, 0, err
		}
		out, err := net.Forward(s.Cloud, nil, false)
		if err != nil {
			return 0, 0, err
		}
		labels := targetLabels(s, out)
		for r := 0; r < out.Logits.Rows; r++ {
			if labels[r] < 0 {
				continue
			}
			pred = append(pred, int32(nn.Argmax(out.Logits.Row(r))))
			truth = append(truth, labels[r])
		}
	}
	acc, err = metrics.OverallAccuracy(pred, truth)
	if err != nil {
		return 0, 0, err
	}
	miou, err = metrics.MeanIoU(pred, truth, classes)
	return acc, miou, err
}

func scaleGrads(params []*nn.Param, s float64) {
	f := float32(s)
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= f
		}
	}
}
