package loadgen

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// The discrete-event simulator. One goroutine, virtual nanosecond clock,
// binary event heap with (time, sequence) ordering — every tie breaks the
// same way on every run. The fleet *control plane* is the real thing: the
// serve package's consistent-hash Ring, token-bucket QoS (on the virtual
// clock) and hysteresis ShedController make every admit/shed decision;
// only frame *execution* is modelled, as a per-tier service time drawn from
// calibration or the spec, with the engine queue/worker/degradation-ladder
// state machine mirroring serve.Engine's (same watermarks, same hysteresis
// rule, same reject-don't-block queue).
//
// With StallFrac > 0 the survivability layer engages (mirrors the stall
// watchdog, serve.RetryPolicy and serve.HedgePolicy; DESIGN.md §15): a
// seeded per-dispatch draw wedges the attempt's worker until the modelled
// watchdog reclaims it at StallTimeout; stalled frames are then retried on
// the next ring candidate (deadline-budget-aware, up to Retries times) and
// optionally hedged — a duplicate attempt launched HedgeDelay after the
// primary stalls, first completion wins, the loser is cancelled at pickup
// or completes without counting. The stall draw is a pure hash of (seed,
// attempt ordinal), never the arrival RNG, so StallFrac = 0 runs are
// bit-identical to the plain model.

// event kinds.
const (
	evArrival = iota
	evComplete
	evStallFree // watchdog reclaims a stalled attempt's worker
	evHedge     // hedge launch point for a stalled frame
)

// event is one heap entry. Completion events carry the frame's provenance;
// survivability events additionally carry the frame id and whether the
// attempt was a hedge.
type event struct {
	at     int64 // virtual ns
	seq    uint64
	kind   uint8
	prio   uint8
	tier   int16
	eng    int32
	tenant int32
	arr    int64  // arrival time of the completing frame
	fid    uint64 // frame id; 0 when the survivability layer is off
	hedge  bool   // this attempt is the frame's hedge
}

// eventHeap is a binary min-heap over (at, seq).
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(old[l], old[small]) {
			small = l
		}
		if r < n && eventLess(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// qItem is one queued attempt in a simulated engine.
type qItem struct {
	arr    int64
	tenant int32
	prio   uint8
	fid    uint64 // frame id; 0 when the survivability layer is off
	hedge  bool
}

// frameState tracks one admitted frame's attempts while the survivability
// layer is on: the primary dispatch plus any retries and the optional hedge
// all point back here, so the first completion wins exactly once and a
// frame terminally fails only when its last in-flight attempt resolves.
type frameState struct {
	arr     int64
	h       uint64 // route hash; retry/hedge candidates recomputed from it
	tenant  int32
	prio    uint8
	candIdx int // next ring candidate for a retry or hedge dispatch
	retries int
	pending int // attempts queued or in service
	done    bool
	hedged  bool
}

// simEngine mirrors serve.Engine's queue/worker/ladder state: a bounded
// FIFO (reject-don't-block), Workers service slots, and the degradation
// ladder's step-down-on-high-watermark / step-up-after-hysteresis rule.
type simEngine struct {
	q         []qItem // circular buffer of capacity depth
	head, n   int
	depth     int
	free      int // idle workers
	tier      int
	calm      int
	stepDowns uint64
	stepUps   uint64
}

func (e *simEngine) fill() float64 { return float64(e.n) / float64(e.depth) }

func (e *simEngine) push(it qItem) {
	e.q[(e.head+e.n)%e.depth] = it
	e.n++
}

func (e *simEngine) popq() qItem {
	it := e.q[e.head]
	e.head = (e.head + 1) % e.depth
	e.n--
	return it
}

// Counts are the exact, reproducibility-bearing outcome counters: same
// (spec, seed, mult) ⇒ identical Counts, bit for bit.
type Counts struct {
	Offered        uint64   `json:"offered"`
	Admitted       uint64   `json:"admitted"`
	Completed      uint64   `json:"completed"`
	ShedThrottled  uint64   `json:"shed_throttle"`
	ShedOverload   uint64   `json:"shed_overload"`
	ShedQueueFull  uint64   `json:"shed_queue"`
	FailedDeadline uint64   `json:"failed_deadline"`
	FailedStall    uint64   `json:"failed_stall"` // stalled with retries/hedge exhausted
	Stalled        uint64   `json:"stalled"`      // attempts wedged until the watchdog reclaimed them
	Retried        uint64   `json:"retried"`      // re-dispatches of stalled frames (attempts, not offers)
	Hedged         uint64   `json:"hedged"`       // hedge attempts launched
	HedgeWins      uint64   `json:"hedge_wins"`   // frames whose hedge completed first
	Degraded       []uint64 `json:"degraded"`     // completed per tier; [0] is full fidelity
	StepDowns      uint64   `json:"step_downs"`
	StepUps        uint64   `json:"step_ups"`
	ShedRaises     uint64   `json:"shed_raises"`
	ShedDrops      uint64   `json:"shed_drops"`
	ShedLevelMax   int      `json:"shed_level_max"`
}

// Shed sums the three shed classes.
func (c *Counts) Shed() uint64 { return c.ShedThrottled + c.ShedOverload + c.ShedQueueFull }

// ClassMetrics summarizes one priority class.
type ClassMetrics struct {
	Priority  string  `json:"priority"`
	Offered   uint64  `json:"offered"`
	Completed uint64  `json:"completed"`
	Shed      uint64  `json:"shed"`
	Failed    uint64  `json:"failed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// Metrics is one scenario's full result.
type Metrics struct {
	Counts
	P50              time.Duration  `json:"-"`
	P99              time.Duration  `json:"-"`
	Mean             time.Duration  `json:"-"`
	Max              time.Duration  `json:"-"`
	P50Ms            float64        `json:"p50_ms"`
	P99Ms            float64        `json:"p99_ms"`
	MeanMs           float64        `json:"mean_ms"`
	MaxMs            float64        `json:"max_ms"`
	OfferedFPS       float64        `json:"offered_fps"`
	GoodputFPS       float64        `json:"goodput_fps"`
	FullFidelityFrac float64        `json:"full_fidelity_frac"`
	FairnessJain     float64        `json:"fairness_jain"`
	Classes          []ClassMetrics `json:"classes"`
}

// sim is one scenario run's state.
type sim struct {
	spec    Spec
	rng     *RNG
	now     int64
	durNs   int64
	seq     uint64
	events  eventHeap
	engines []simEngine
	ring    *serve.Ring
	shed    *serve.ShedController
	qos     *serve.QoS
	names   []string
	prio    []serve.Priority
	zipf    *Zipf
	cand    []int

	// Survivability state (nil/zero unless StallFrac > 0).
	surv        bool
	frames      map[uint64]*frameState
	nextFid     uint64
	attemptSeq  uint64 // ordinal feeding the pure-hash stall draw
	stallNs     int64  // resolved watchdog reclaim delay
	hedgeNs     int64  // hedge launch delay; 0 disables hedging
	hedgeBudget float64
	wantCand    int   // ring candidates needed to cover spill + retries + hedge
	cand2       []int // scratch for retry/hedge candidate recomputation

	rateBase   float64 // spec rate × overload multiplier
	xmCache    float64 // Pareto xm at the current effective rate
	rateCache  float64
	alpha      float64
	maxTier    int
	ladderHigh float64
	ladderLow  float64
	ladderHyst int

	lat      []int64
	classLat [numPriorities][]int64
	classes  [numPriorities]ClassMetrics
	tOffered []uint32
	tDone    []uint32
	counts   Counts
}

// EffectiveRate is the base arrival rate at multiplier 1: the spec's Rate,
// or the fleet's modelled capacity when Rate is auto.
func (s *Spec) EffectiveRate() float64 {
	if s.Rate > 0 {
		return s.Rate
	}
	return s.capacity()
}

// Run simulates one scenario at the given overload multiplier and returns
// its metrics. The spec is validated first; the conservation laws
// (offered = admitted + shed, admitted = completed + deadline-failed +
// stall-failed, hedge wins ≤ hedges launched) are checked before returning
// and violate loudly, never silently.
func Run(spec Spec, mult float64) (Metrics, error) {
	if err := spec.Validate(); err != nil {
		return Metrics{}, err
	}
	if !(mult > 0) {
		return Metrics{}, specErr("mult", fmt.Sprint(mult), "overload multiplier must be > 0")
	}
	s, err := newSim(spec, mult)
	if err != nil {
		return Metrics{}, err
	}
	return s.run()
}

func newSim(spec Spec, mult float64) (*sim, error) {
	vn := spec.VNodes
	ring, err := serve.NewRing(spec.Engines, vn)
	if err != nil {
		return nil, err
	}
	s := &sim{
		spec:     spec,
		rng:      NewRNG(spec.Seed),
		durNs:    int64(spec.Duration),
		ring:     ring,
		zipf:     NewZipf(spec.Tenants, spec.ZipfS),
		engines:  make([]simEngine, spec.Engines),
		cand:     make([]int, 0, spec.Engines),
		rateBase: spec.EffectiveRate() * mult,
		alpha:    spec.ParetoAlpha,
		maxTier:  len(spec.SvcTiers) - 1,
		prio:     make([]serve.Priority, spec.Tenants),
		tOffered: make([]uint32, spec.Tenants),
		tDone:    make([]uint32, spec.Tenants),
	}
	depth := spec.queueDepth()
	for i := range s.engines {
		s.engines[i] = simEngine{q: make([]qItem, depth), depth: depth, free: spec.Workers}
	}
	// Ladder parameters, defaulted exactly like serve.Config.
	s.ladderHigh = spec.LadderHigh
	if s.ladderHigh <= 0 {
		s.ladderHigh = 0.75
	}
	s.ladderLow = spec.LadderLow
	if s.ladderLow <= 0 || s.ladderLow >= s.ladderHigh {
		s.ladderLow = s.ladderHigh / 3
	}
	s.ladderHyst = spec.LadderHyst
	if s.ladderHyst <= 0 {
		s.ladderHyst = 4
	}
	s.shed = serve.NewShedController(serve.ShedConfig{
		HighWatermark: spec.ShedHigh,
		LowWatermark:  spec.ShedLow,
		Hysteresis:    spec.ShedHyst,
	})
	// Priority classes: each tenant draws its class from the mix by a pure
	// hash of (seed, tenant) — stable across scenarios of one spec.
	var cum [numPriorities]float64
	var total float64
	for _, m := range spec.Mix {
		total += m
	}
	acc := 0.0
	for i, m := range spec.Mix {
		acc += m / total
		cum[i] = acc
	}
	for t := range s.prio {
		u := float64(hash64(spec.Seed^0x70726f9e3779b9^uint64(t))>>11) * (1.0 / (1 << 53))
		s.prio[t] = serve.PriorityLow
		for c := 0; c < numPriorities; c++ {
			if u < cum[c] {
				s.prio[t] = serve.Priority(c)
				break
			}
		}
	}
	for c := range s.classes {
		s.classes[c].Priority = serve.Priority(c).String()
	}
	// Per-tenant token buckets: the real serve.QoS on the virtual clock.
	if spec.QoSRate > 0 {
		s.names = make([]string, spec.Tenants)
		limits := make(map[string]serve.TenantLimit, spec.Tenants)
		for t := range s.names {
			s.names[t] = fmt.Sprintf("t%d", t)
			limits[s.names[t]] = serve.TenantLimit{Rate: spec.QoSRate, Burst: spec.QoSBurst, Priority: s.prio[t]}
		}
		s.qos = serve.NewQoS(serve.QoSConfig{
			Default: serve.TenantLimit{Rate: spec.QoSRate, Burst: spec.QoSBurst},
			Tenants: limits,
			Clock:   func() time.Time { return time.Unix(0, s.now) },
		})
	}
	s.counts.Degraded = make([]uint64, len(spec.SvcTiers))
	// Survivability layer: engages only when stalls are actually injected, so
	// StallFrac = 0 runs stay bit-identical to the plain model.
	s.surv = spec.StallFrac > 0
	if s.surv {
		s.frames = make(map[uint64]*frameState)
		s.stallNs = int64(spec.StallTimeout)
		if s.stallNs <= 0 {
			s.stallNs = 4 * int64(spec.SvcTiers[0])
		}
		s.hedgeNs = int64(spec.HedgeDelay)
		s.hedgeBudget = spec.HedgeBudget
		if s.hedgeBudget <= 0 {
			s.hedgeBudget = 0.05
		}
		s.wantCand = 1 + spec.Spill + spec.Retries
		if s.hedgeNs > 0 {
			s.wantCand++
		}
	}
	return s, nil
}

// hash64 is the SplitMix64 finalizer as a pure hash.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rampMult evaluates the diurnal schedule at virtual time t (piecewise
// linear between breakpoints; flat 1 with no schedule). Clamped to 1e-3 so
// the arrival chain never stalls on a zero-rate segment.
func (s *sim) rampMult(t int64) float64 {
	r := s.spec.Ramp
	m := 1.0
	if len(r) > 0 {
		x := float64(t) / float64(s.durNs)
		switch {
		case x <= r[0].At:
			m = r[0].Mult
		case x >= r[len(r)-1].At:
			m = r[len(r)-1].Mult
		default:
			for i := 1; i < len(r); i++ {
				if x <= r[i].At {
					span := r[i].At - r[i-1].At
					if span <= 0 {
						m = r[i].Mult
					} else {
						f := (x - r[i-1].At) / span
						m = r[i-1].Mult + f*(r[i].Mult-r[i-1].Mult)
					}
					break
				}
			}
		}
	}
	if m < 1e-3 {
		m = 1e-3
	}
	return m
}

// scheduleArrival draws the next Pareto inter-arrival gap at the current
// ramped rate and pushes the arrival if it lands inside the scenario.
func (s *sim) scheduleArrival() {
	rate := s.rateBase * s.rampMult(s.now)
	// Exact equality is the point: this is a memo key (recompute xm only when
	// the ramped rate changes bit-for-bit), not a numeric comparison.
	//edgepc:lint-ignore floateq memo-key comparison, not arithmetic
	if rate != s.rateCache {
		s.rateCache = rate
		s.xmCache = ParetoXm(s.alpha, rate)
	}
	gap := s.rng.Pareto(s.alpha, s.xmCache)
	at := s.now + int64(gap*1e9)
	if at <= s.now {
		at = s.now + 1
	}
	if at > s.durNs {
		return // open-loop stream ends; completions drain
	}
	s.seq++
	s.events.push(event{at: at, seq: s.seq, kind: evArrival})
}

func (s *sim) fleetFill() float64 {
	var sum float64
	for i := range s.engines {
		sum += s.engines[i].fill()
	}
	return sum / float64(len(s.engines))
}

// arrive processes one arrival: tenant draw, QoS, shed, route, enqueue.
func (s *sim) arrive() {
	tenant := s.zipf.Pick(s.rng.Float64())
	stream := s.rng.IntN(s.spec.Streams)
	s.counts.Offered++
	s.tOffered[tenant]++
	prio := s.prio[tenant]
	if s.qos != nil {
		p, err := s.qos.Admit(s.names[tenant])
		prio = p
		if err != nil {
			s.counts.ShedThrottled++
			s.classes[prio].Offered++
			s.classes[prio].Shed++
			return
		}
	}
	s.classes[prio].Offered++
	s.shed.Observe(s.fleetFill())
	if l := s.shed.Level(); l > s.counts.ShedLevelMax {
		s.counts.ShedLevelMax = l
	}
	if s.shed.Sheds(prio) {
		s.counts.ShedOverload++
		s.classes[prio].Shed++
		return
	}
	h := hash64(hash64(s.spec.Seed^0x726f757465) ^ uint64(tenant)<<10 ^ uint64(stream))
	want := 1 + s.spec.Spill
	if s.surv && s.wantCand > want {
		want = s.wantCand
	}
	s.cand = s.ring.CandidatesHash(h, want, s.cand)
	// Initial admission only spills over the first 1+Spill candidates — the
	// rest of the walk is reserved for retries and hedges, exactly like the
	// router's wider Candidates request.
	adm := s.cand
	if spill := 1 + s.spec.Spill; len(adm) > spill {
		adm = adm[:spill]
	}
	for i, id := range adm {
		e := &s.engines[id]
		if e.n >= e.depth {
			continue
		}
		s.counts.Admitted++
		var fid uint64
		if s.surv {
			s.nextFid++
			fid = s.nextFid
			s.frames[fid] = &frameState{
				arr: s.now, h: h, tenant: int32(tenant), prio: uint8(prio),
				candIdx: i + 1, pending: 1,
			}
		}
		e.push(qItem{arr: s.now, tenant: int32(tenant), prio: uint8(prio), fid: fid})
		// Mirror serve.maybeStepDown: a successful enqueue past the high
		// watermark steps the ladder down one tier.
		if e.fill() >= s.ladderHigh && e.tier < s.maxTier {
			e.tier++
			e.calm = 0
			e.stepDowns++
		}
		s.dispatch(id)
		return
	}
	s.counts.ShedQueueFull++
	s.classes[prio].Shed++
}

// dispatch starts service on engine id while workers are idle and frames
// queued, mirroring serve's at-pickup deadline drop. With the survivability
// layer on it also draws per-attempt stalls and cancels queued losers of
// already-resolved hedge races.
func (s *sim) dispatch(id int) {
	e := &s.engines[id]
	for e.free > 0 && e.n > 0 {
		it := e.popq()
		if it.fid != 0 {
			if fr := s.frames[it.fid]; fr != nil && fr.done {
				// Loser attempt of a frame another attempt already resolved:
				// the real router cancels it at pickup; drop without service.
				s.resolveAttempt(it.fid, &s.counts.FailedStall)
				s.observeCalm(e)
				continue
			}
		}
		if s.spec.Deadline > 0 && s.now-it.arr > int64(s.spec.Deadline) {
			if it.fid != 0 {
				s.resolveAttempt(it.fid, &s.counts.FailedDeadline)
			} else {
				s.counts.FailedDeadline++
				s.classes[it.prio].Failed++
			}
			s.observeCalm(e)
			continue
		}
		e.free--
		if s.surv && s.stallDraw() {
			// Stalled attempt: the worker stays wedged until the modelled
			// watchdog reclaims it at StallTimeout. A stalled primary also
			// arms the frame's hedge launch point.
			s.counts.Stalled++
			s.seq++
			s.events.push(event{
				at: s.now + s.stallNs, seq: s.seq, kind: evStallFree, prio: it.prio,
				eng: int32(id), tenant: it.tenant, arr: it.arr, fid: it.fid, hedge: it.hedge,
			})
			if it.fid != 0 && s.hedgeNs > 0 && !it.hedge {
				if fr := s.frames[it.fid]; fr != nil && !fr.hedged {
					s.seq++
					s.events.push(event{at: s.now + s.hedgeNs, seq: s.seq, kind: evHedge, fid: it.fid})
				}
			}
			continue
		}
		svc := int64(s.spec.SvcTiers[e.tier])
		s.seq++
		s.events.push(event{
			at: s.now + svc, seq: s.seq, kind: evComplete, prio: it.prio,
			tier: int16(e.tier), eng: int32(id), tenant: it.tenant, arr: it.arr,
			fid: it.fid, hedge: it.hedge,
		})
	}
}

// stallDraw decides whether the attempt being dispatched stalls: a pure
// hash of (seed, attempt ordinal), never the arrival RNG, so enabling the
// survivability layer does not perturb the arrival stream.
func (s *sim) stallDraw() bool {
	s.attemptSeq++
	u := float64(hash64(s.spec.Seed^0x7374616c6c21^s.attemptSeq)>>11) * (1.0 / (1 << 53))
	return u < s.spec.StallFrac
}

// resolveAttempt retires one in-flight attempt of frame fid. When the last
// attempt resolves without any attempt having won, the frame terminally
// fails into *failed; resolved frames are dropped from the tracking map.
func (s *sim) resolveAttempt(fid uint64, failed *uint64) {
	fr := s.frames[fid]
	fr.pending--
	if fr.pending > 0 {
		return
	}
	if !fr.done {
		fr.done = true
		*failed++
		s.classes[fr.prio].Failed++
	}
	delete(s.frames, fid)
}

// reenqueue pushes a fresh attempt of fr onto the next ring candidate with
// queue room, wrapping over the candidate walk like the router's
// trySubmitFrom. Returns the target engine (not yet dispatched) or -1 when
// every candidate's queue is full.
func (s *sim) reenqueue(fr *frameState, fid uint64, hedge bool) int {
	s.cand2 = s.ring.CandidatesHash(fr.h, s.wantCand, s.cand2)
	cand := s.cand2
	for i := 0; i < len(cand); i++ {
		j := (fr.candIdx + i) % len(cand)
		e := &s.engines[cand[j]]
		if e.n >= e.depth {
			continue
		}
		fr.candIdx = j + 1
		e.push(qItem{arr: fr.arr, tenant: fr.tenant, prio: fr.prio, fid: fid, hedge: hedge})
		if e.fill() >= s.ladderHigh && e.tier < s.maxTier {
			e.tier++
			e.calm = 0
			e.stepDowns++
		}
		return cand[j]
	}
	return -1
}

// stallFree is the modelled watchdog firing: the wedged worker comes back,
// and the stalled frame either retries on the next candidate (primary
// attempts only, within the retry cap and the deadline budget — mirroring
// serve.RetryPolicy's never-retry-past-the-budget rule) or resolves,
// terminally failing as stall-failed if it was the last attempt.
func (s *sim) stallFree(ev event) {
	e := &s.engines[ev.eng]
	e.free++
	fr := s.frames[ev.fid]
	if ev.fid != 0 && fr != nil && !fr.done && !ev.hedge && fr.retries < s.spec.Retries &&
		(s.spec.Deadline <= 0 || s.now-fr.arr < int64(s.spec.Deadline)) {
		if id := s.reenqueue(fr, ev.fid, false); id >= 0 {
			fr.retries++
			s.counts.Retried++
			s.dispatch(id)
			s.dispatch(int(ev.eng))
			return
		}
	}
	if ev.fid != 0 {
		s.resolveAttempt(ev.fid, &s.counts.FailedStall)
	}
	s.dispatch(int(ev.eng))
}

// hedgeFire launches the frame's hedge if it is still unresolved and the
// hedge budget (HedgeBudget × offered, mirroring serve.HedgePolicy's
// MaxFraction) has room. The hedge is a full attempt: it can stall, be
// deadline-dropped, or win the race.
func (s *sim) hedgeFire(ev event) {
	fr := s.frames[ev.fid]
	if fr == nil || fr.done || fr.hedged {
		return
	}
	if float64(s.counts.Hedged+1) > s.hedgeBudget*float64(s.counts.Offered) {
		return
	}
	id := s.reenqueue(fr, ev.fid, true)
	if id < 0 {
		return
	}
	fr.hedged = true
	fr.pending++
	s.counts.Hedged++
	s.dispatch(id)
}

// observeCalm mirrors serve.observeLoad's hysteresis step-up.
func (s *sim) observeCalm(e *simEngine) {
	if e.fill() > s.ladderLow {
		e.calm = 0
		return
	}
	if e.tier == 0 {
		return
	}
	e.calm++
	if e.calm < s.ladderHyst {
		return
	}
	e.tier--
	e.stepUps++
	e.calm = 0
}

// complete finishes one attempt: latency accounting, ladder calm
// observation, next dispatch. Under the survivability layer only the first
// attempt of a frame to complete counts — a hedge-race loser finishes its
// service without counting.
func (s *sim) complete(ev event) {
	e := &s.engines[ev.eng]
	e.free++
	if ev.fid != 0 {
		fr := s.frames[ev.fid]
		if !fr.done {
			fr.done = true
			lat := s.now - ev.arr
			s.lat = append(s.lat, lat)
			s.classLat[ev.prio] = append(s.classLat[ev.prio], lat)
			s.counts.Completed++
			s.counts.Degraded[ev.tier]++
			s.tDone[ev.tenant]++
			s.classes[ev.prio].Completed++
			if ev.hedge {
				s.counts.HedgeWins++
			}
		}
		s.resolveAttempt(ev.fid, &s.counts.FailedStall)
		s.observeCalm(e)
		s.dispatch(int(ev.eng))
		return
	}
	lat := s.now - ev.arr
	s.lat = append(s.lat, lat)
	s.classLat[ev.prio] = append(s.classLat[ev.prio], lat)
	s.counts.Completed++
	s.counts.Degraded[ev.tier]++
	s.tDone[ev.tenant]++
	s.classes[ev.prio].Completed++
	s.observeCalm(e)
	s.dispatch(int(ev.eng))
}

func (s *sim) run() (Metrics, error) {
	s.scheduleArrival()
	for len(s.events) > 0 {
		ev := s.events.pop()
		s.now = ev.at
		switch ev.kind {
		case evArrival:
			s.arrive()
			s.scheduleArrival()
		case evComplete:
			s.complete(ev)
		case evStallFree:
			s.stallFree(ev)
		case evHedge:
			s.hedgeFire(ev)
		}
	}
	for i := range s.engines {
		s.counts.StepDowns += s.engines[i].stepDowns
		s.counts.StepUps += s.engines[i].stepUps
	}
	st := s.shed.Stats()
	s.counts.ShedRaises = st.Raises
	s.counts.ShedDrops = st.Drops

	c := &s.counts
	if c.Offered != c.Admitted+c.Shed() {
		return Metrics{}, fmt.Errorf("loadgen: accounting violated: offered %d != admitted %d + shed %d", c.Offered, c.Admitted, c.Shed())
	}
	if c.Admitted != c.Completed+c.FailedDeadline+c.FailedStall {
		return Metrics{}, fmt.Errorf("loadgen: accounting violated: admitted %d != completed %d + deadline-failed %d + stall-failed %d", c.Admitted, c.Completed, c.FailedDeadline, c.FailedStall)
	}
	if c.HedgeWins > c.Hedged {
		return Metrics{}, fmt.Errorf("loadgen: accounting violated: hedge wins %d > hedges launched %d", c.HedgeWins, c.Hedged)
	}
	if len(s.frames) > 0 {
		return Metrics{}, fmt.Errorf("loadgen: accounting violated: %d frames leaked unresolved", len(s.frames))
	}

	m := Metrics{Counts: s.counts}
	durSec := s.spec.Duration.Seconds()
	m.OfferedFPS = float64(c.Offered) / durSec
	m.GoodputFPS = float64(c.Completed) / durSec
	if c.Completed > 0 {
		m.FullFidelityFrac = float64(c.Degraded[0]) / float64(c.Completed)
	}
	m.P50, m.P99, m.Mean, m.Max = latSummary(s.lat)
	m.P50Ms, m.P99Ms = durMs(m.P50), durMs(m.P99)
	m.MeanMs, m.MaxMs = durMs(m.Mean), durMs(m.Max)
	for cidx := range s.classes {
		cl := s.classes[cidx]
		p50, p99, _, _ := latSummary(s.classLat[cidx])
		cl.P50Ms, cl.P99Ms = durMs(p50), durMs(p99)
		m.Classes = append(m.Classes, cl)
	}
	shares := make([]float64, 0, s.spec.Tenants)
	for t := 0; t < s.spec.Tenants; t++ {
		if s.tOffered[t] == 0 {
			continue
		}
		shares = append(shares, float64(s.tDone[t])/float64(s.tOffered[t]))
	}
	m.FairnessJain = metrics.JainFairness(shares)
	return m, nil
}

// latSummary computes nearest-rank quantiles over latency samples.
func latSummary(lat []int64) (p50, p99, mean, max time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]int64(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	rank := func(q float64) time.Duration {
		r := int(q*float64(len(sorted)) + 0.5)
		if r < 1 {
			r = 1
		}
		if r > len(sorted) {
			r = len(sorted)
		}
		return time.Duration(sorted[r-1])
	}
	return rank(0.50), rank(0.99), time.Duration(sum / int64(len(sorted))), time.Duration(sorted[len(sorted)-1])
}

func durMs(d time.Duration) float64 { return float64(d) / 1e6 }

// Scenario is one grid point: the overload multiplier and its metrics.
type Scenario struct {
	Mult float64 `json:"mult"`
	Metrics
}

// RunGrid runs the spec at each overload multiplier with the same seed.
func RunGrid(spec Spec, mults []float64) ([]Scenario, error) {
	out := make([]Scenario, 0, len(mults))
	for _, mult := range mults {
		m, err := Run(spec, mult)
		if err != nil {
			return nil, fmt.Errorf("mult %g: %w", mult, err)
		}
		out = append(out, Scenario{Mult: mult, Metrics: m})
	}
	return out, nil
}
