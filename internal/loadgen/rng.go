package loadgen

import (
	"math"
	"sort"
)

// Seeded PRNG and the two samplers the harness draws from: Pareto
// inter-arrival times (heavy-tailed bursts — an open-loop stream of
// independent clients is bursty, not Poisson-smooth) and Zipf tenant skew
// (a few hot tenants dominate, a long tail trickles). Hand-rolled SplitMix64
// rather than math/rand so the byte-for-byte sequence is pinned by this
// repo, not by a Go release.

// RNG is a SplitMix64 pseudo-random generator. Deterministic in its seed;
// not safe for concurrent use (the simulator is single-threaded by design).
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// IntN returns a uniform draw in [0, n).
func (r *RNG) IntN(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Pareto draws from a Pareto(alpha, xm) distribution by inversion:
// xm * u^(-1/alpha). Heavy-tailed for small alpha; mean alpha*xm/(alpha-1)
// for alpha > 1.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	u := 1 - r.Float64() // in (0, 1]: avoids the infinite draw at u = 0
	return xm * math.Pow(u, -1/alpha)
}

// ParetoXm returns the scale parameter that gives a Pareto(alpha) draw the
// mean inter-arrival time 1/rate.
func ParetoXm(alpha, rate float64) float64 {
	return (alpha - 1) / (alpha * rate)
}

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s,
// via a precomputed cumulative table and binary search — deterministic and
// O(log n) per draw, fine up to the spec's 2M-tenant cap.
type Zipf struct {
	cum []float64
}

// NewZipf builds the sampler. s = 0 degenerates to uniform.
func NewZipf(n int, s float64) *Zipf {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Pick maps a uniform draw u in [0,1) to a rank.
func (z *Zipf) Pick(u float64) int {
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}
