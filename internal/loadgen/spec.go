// Package loadgen is the deterministic fleet traffic harness (DESIGN.md
// §13): an open-loop, discrete-event simulation of the serving fleet's
// control plane — the *same* consistent-hash ring, per-tenant token buckets
// and shed controller the live router runs (internal/serve), driven in
// virtual time by a seeded PRNG and an injected clock. Arrivals are
// heavy-tailed (Pareto inter-arrival times), modulated by a diurnal ramp
// schedule, and spread across tenants by a Zipf skew; engine service times
// per degradation tier come from a calibration measurement or a pinned
// spec, so a run's every admit/shed/degrade decision is a pure function of
// (spec, seed): same seed ⇒ bit-identical counts, which is what lets the
// overload benchmarks and the tests built on them assert exact outcomes at
// million-arrival scale with zero wall-clock sleeps.
package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// SpecError is the typed parse/validation failure for scenario specs: the
// offending field, the rejected value, and why. Match with errors.As.
type SpecError struct {
	Field  string
	Value  string
	Reason string
}

func (e *SpecError) Error() string {
	if e.Value == "" {
		return fmt.Sprintf("loadgen: spec field %q: %s", e.Field, e.Reason)
	}
	return fmt.Sprintf("loadgen: spec field %q = %q: %s", e.Field, e.Value, e.Reason)
}

func specErr(field, value, reason string) error {
	return &SpecError{Field: field, Value: value, Reason: reason}
}

// RampPoint is one breakpoint of the diurnal schedule: at fraction At of
// the scenario duration, the arrival rate is scaled by Mult (linear
// interpolation between breakpoints).
type RampPoint struct {
	At   float64 // position in [0,1] of the scenario duration
	Mult float64 // rate multiplier at that position, >= 0
}

// Spec is one loadgen scenario. Build from Defaults()/Quick() and override
// via flags or a compact ParseSpec string.
type Spec struct {
	Seed     uint64        // PRNG seed; every random draw derives from it
	Duration time.Duration // virtual scenario length

	// Arrivals: open-loop, rate base Rate (frames/s) scaled by the overload
	// multiplier and the ramp. Rate <= 0 means "auto": the fleet's modelled
	// full-fidelity capacity (workers / svc[0]), so multiplier 1 is exactly
	// 1× capacity and 10×/100× are true overload factors.
	Rate        float64
	ParetoAlpha float64     // inter-arrival tail exponent, > 1
	Ramp        []RampPoint // empty: flat schedule

	// Tenant population.
	Tenants int
	ZipfS   float64                // tenant skew exponent, >= 0 (0: uniform)
	Streams int                    // streams per tenant (routing keys)
	Mix     [numPriorities]float64 // tenant-class mix high/normal/low, sums to ~1

	// Fleet shape.
	Engines int
	Workers int // per engine
	Queue   int // per-engine queue depth; 0: 4× workers

	// Service model: SvcTiers[t] is the per-frame service time at
	// degradation tier t (t = 0 full fidelity). len(SvcTiers) fixes the
	// ladder depth.
	SvcTiers []time.Duration

	// Engine degradation ladder (mirrors serve.Config semantics).
	LadderHigh float64 // queue-fill step-down watermark; default 0.75
	LadderLow  float64 // calm watermark; default 0.25
	LadderHyst int     // consecutive calm completions to step up; default 4

	// Fleet shed controller (serve.ShedConfig fields).
	ShedHigh float64
	ShedLow  float64
	ShedHyst int

	// Per-tenant QoS token buckets; QoSRate <= 0 disables throttling.
	QoSRate  float64
	QoSBurst float64

	Deadline time.Duration // per-frame deadline at service start; 0: none
	VNodes   int           // ring vnodes per engine
	Spill    int           // extra ring candidates on queue-full

	// Survivability model (mirrors serve.RetryPolicy / HedgePolicy and the
	// stall watchdog; DESIGN.md §15). StallFrac > 0 injects worker stalls: a
	// stalled attempt wedges its worker until the watchdog reclaims it at
	// StallTimeout. Retries re-dispatches a stalled frame on the next ring
	// candidate up to Retries times (deadline-budget-aware). HedgeDelay > 0
	// launches a duplicate attempt on the next candidate when the primary has
	// not resolved after the delay; first completion wins, capped at
	// HedgeBudget × offered hedges.
	StallFrac    float64       // fraction of dispatched attempts that stall, [0,1]
	StallTimeout time.Duration // watchdog reclaim delay; 0: 4× SvcTiers[0]
	Retries      int           // max re-dispatches of a stalled frame, [0,8]
	HedgeDelay   time.Duration // hedge launch delay; 0 disables hedging
	HedgeBudget  float64       // max hedges / offered, (0,1]; 0: 0.05
}

const numPriorities = 3

// Defaults is the full-scale scenario baseline: a 4-engine fleet driven at
// its modelled capacity with heavy-tailed arrivals and 20k Zipf-skewed
// tenants.
func Defaults() Spec {
	return Spec{
		Seed:        1,
		Duration:    4 * time.Second,
		Rate:        0, // auto: fleet capacity
		ParetoAlpha: 1.5,
		Tenants:     20000,
		ZipfS:       1.1,
		Streams:     4,
		Mix:         [numPriorities]float64{0.2, 0.5, 0.3},
		Engines:     4,
		Workers:     2,
		SvcTiers:    []time.Duration{2 * time.Millisecond, 1500 * time.Microsecond, 1100 * time.Microsecond, 850 * time.Microsecond, 700 * time.Microsecond},
		LadderHigh:  0.75,
		LadderLow:   0.25,
		LadderHyst:  4,
		QoSRate:     0,
		QoSBurst:    0,
		VNodes:      128,
		Spill:       1,
	}
}

// Quick is the CI-scale scenario: a 2-engine fleet and a 400ms virtual
// window, finishing in a couple of wall seconds at 100× overload.
func Quick() Spec {
	s := Defaults()
	s.Duration = 400 * time.Millisecond
	s.Tenants = 500
	s.Engines = 2
	s.Workers = 2
	s.SvcTiers = []time.Duration{800 * time.Microsecond, 600 * time.Microsecond, 450 * time.Microsecond}
	return s
}

// Validate checks every field and returns a *SpecError naming the first
// violation. A validated spec is guaranteed runnable by Run.
func (s *Spec) Validate() error {
	if s.Duration <= 0 {
		return specErr("duration", s.Duration.String(), "must be positive")
	}
	if s.Duration > time.Hour {
		return specErr("duration", s.Duration.String(), "virtual duration capped at 1h")
	}
	if !(s.Rate >= 0) {
		return specErr("rate", fmt.Sprint(s.Rate), "must be >= 0 (0 = auto capacity)")
	}
	if s.Rate > 1e7 {
		return specErr("rate", fmt.Sprint(s.Rate), "capped at 1e7 frames/s")
	}
	if !(s.ParetoAlpha > 1) || s.ParetoAlpha > 100 {
		return specErr("alpha", fmt.Sprint(s.ParetoAlpha), "Pareto tail exponent must be in (1, 100] for a finite mean")
	}
	for i, p := range s.Ramp {
		if !(p.At >= 0) || p.At > 1 || !(p.Mult >= 0) || p.Mult > 1e4 {
			return specErr("ramp", fmt.Sprintf("%g:%g", p.At, p.Mult), "breakpoints need position in [0,1] and multiplier in [0,1e4]")
		}
		if i > 0 && p.At < s.Ramp[i-1].At {
			return specErr("ramp", fmt.Sprintf("%g:%g", p.At, p.Mult), "breakpoint positions must be non-decreasing")
		}
	}
	if s.Tenants < 1 || s.Tenants > 2_000_000 {
		return specErr("tenants", fmt.Sprint(s.Tenants), "must be in [1, 2000000]")
	}
	if !(s.ZipfS >= 0) || s.ZipfS > 10 {
		return specErr("zipf", fmt.Sprint(s.ZipfS), "skew exponent must be in [0, 10]")
	}
	if s.Streams < 1 || s.Streams > 1024 {
		return specErr("streams", fmt.Sprint(s.Streams), "must be in [1, 1024]")
	}
	var mixSum float64
	for _, m := range s.Mix {
		if !(m >= 0) {
			return specErr("mix", fmt.Sprint(m), "class fractions must be >= 0")
		}
		mixSum += m
	}
	if mixSum <= 0 {
		return specErr("mix", "", "class fractions must sum to > 0")
	}
	if s.Engines < 1 || s.Engines > 256 {
		return specErr("engines", fmt.Sprint(s.Engines), "must be in [1, 256]")
	}
	if s.Workers < 1 || s.Workers > 1024 {
		return specErr("workers", fmt.Sprint(s.Workers), "must be in [1, 1024]")
	}
	if s.Queue < 0 || s.Queue > 1<<20 {
		return specErr("queue", fmt.Sprint(s.Queue), "must be in [0, 1048576]")
	}
	if len(s.SvcTiers) == 0 {
		return specErr("svc", "", "need at least one service-time tier")
	}
	if len(s.SvcTiers) > 16 {
		return specErr("svc", fmt.Sprint(len(s.SvcTiers)), "at most 16 tiers")
	}
	for _, d := range s.SvcTiers {
		if d <= 0 || d > time.Minute {
			return specErr("svc", d.String(), "tier service times must be in (0, 1m]")
		}
	}
	if !(s.LadderHigh >= 0) || s.LadderHigh > 1 {
		return specErr("ladder-high", fmt.Sprint(s.LadderHigh), "watermark must be in [0, 1]")
	}
	if !(s.LadderLow >= 0) || (s.LadderHigh > 0 && s.LadderLow >= s.LadderHigh) {
		return specErr("ladder-low", fmt.Sprint(s.LadderLow), "must be >= 0 and below ladder-high")
	}
	if s.LadderHyst < 0 || s.LadderHyst > 1<<20 {
		return specErr("ladder-hyst", fmt.Sprint(s.LadderHyst), "must be in [0, 1048576]")
	}
	if !(s.ShedHigh >= 0) || s.ShedHigh > 1 {
		return specErr("shed-high", fmt.Sprint(s.ShedHigh), "watermark must be in [0, 1]")
	}
	if !(s.ShedLow >= 0) || (s.ShedHigh > 0 && s.ShedLow >= s.ShedHigh) {
		return specErr("shed-low", fmt.Sprint(s.ShedLow), "must be >= 0 and below shed-high")
	}
	if s.ShedHyst < 0 || s.ShedHyst > 1<<20 {
		return specErr("shed-hyst", fmt.Sprint(s.ShedHyst), "must be in [0, 1048576]")
	}
	if !(s.QoSRate >= 0) || s.QoSRate > 1e7 {
		return specErr("qos-rate", fmt.Sprint(s.QoSRate), "must be in [0, 1e7]")
	}
	if !(s.QoSBurst >= 0) || s.QoSBurst > 1e7 {
		return specErr("qos-burst", fmt.Sprint(s.QoSBurst), "must be in [0, 1e7]")
	}
	if s.Deadline < 0 || s.Deadline > time.Hour {
		return specErr("deadline", s.Deadline.String(), "must be in [0, 1h]")
	}
	if s.VNodes < 0 || s.VNodes > 1<<16 {
		return specErr("vnodes", fmt.Sprint(s.VNodes), "must be in [0, 65536]")
	}
	if s.Spill < 0 || s.Spill > 256 {
		return specErr("spill", fmt.Sprint(s.Spill), "must be in [0, 256]")
	}
	if !(s.StallFrac >= 0) || s.StallFrac > 1 {
		return specErr("stall-frac", fmt.Sprint(s.StallFrac), "stalled-attempt fraction must be in [0, 1]")
	}
	if s.StallTimeout < 0 || s.StallTimeout > time.Minute {
		return specErr("stall-timeout", s.StallTimeout.String(), "must be in [0, 1m] (0: 4x the tier-0 service time)")
	}
	if s.Retries < 0 || s.Retries > 8 {
		return specErr("retries", fmt.Sprint(s.Retries), "must be in [0, 8]")
	}
	if s.HedgeDelay < 0 || s.HedgeDelay > time.Minute {
		return specErr("hedge-delay", s.HedgeDelay.String(), "must be in [0, 1m] (0 disables hedging)")
	}
	if !(s.HedgeBudget >= 0) || s.HedgeBudget > 1 {
		return specErr("hedge-budget", fmt.Sprint(s.HedgeBudget), "hedge fraction of offered must be in [0, 1] (0: 0.05)")
	}
	// Bound total modelled arrivals so a spec cannot ask for an unrunnable
	// simulation (CI runs attacker-shaped fuzz corpora through here).
	rate := s.Rate
	if rate <= 0 {
		rate = s.capacity()
	}
	maxMult := 1.0
	for _, p := range s.Ramp {
		if p.Mult > maxMult {
			maxMult = p.Mult
		}
	}
	if arrivals := rate * maxMult * s.Duration.Seconds(); arrivals > 5e7 {
		return specErr("rate", fmt.Sprintf("%.0f arrivals", arrivals), "spec implies more than 5e7 arrivals; shorten duration or lower rate")
	}
	return nil
}

// capacity is the fleet's modelled full-fidelity service capacity in
// frames/second — the meaning of "1×" when Rate is auto.
func (s *Spec) capacity() float64 {
	if len(s.SvcTiers) == 0 || s.SvcTiers[0] <= 0 {
		return 0
	}
	return float64(s.Engines*s.Workers) / s.SvcTiers[0].Seconds()
}

// queueDepth is the per-engine queue depth after defaulting (4× workers,
// mirroring serve.Config).
func (s *Spec) queueDepth() int {
	if s.Queue > 0 {
		return s.Queue
	}
	return 4 * s.Workers
}

// ParseSpec overlays a compact scenario string onto base and validates the
// result. The format is semicolon-separated key=value pairs; list-valued
// fields use commas inside the value:
//
//	"rate=500;mult-independent fields...;ramp=0:1,0.5:2,1:1;svc=2ms,1ms;mix=0.2,0.5,0.3"
//
// Recognized keys: seed, duration, rate, alpha, ramp, tenants, zipf,
// streams, mix, engines, workers, queue, svc, ladder-high, ladder-low,
// ladder-hyst, shed-high, shed-low, shed-hyst, qos-rate, qos-burst,
// deadline, vnodes, spill, stall-frac, stall-timeout, retries,
// hedge-delay, hedge-budget. Every failure is a *SpecError.
func ParseSpec(s string, base Spec) (Spec, error) {
	out := base
	for _, pair := range strings.Split(s, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" {
			return out, specErr("spec", pair, "want key=value")
		}
		if err := out.set(k, v); err != nil {
			return out, err
		}
	}
	if err := out.Validate(); err != nil {
		return out, err
	}
	return out, nil
}

// set applies one key=value pair.
func (s *Spec) set(k, v string) error {
	switch k {
	case "seed":
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return specErr(k, v, "want unsigned integer")
		}
		s.Seed = u
	case "duration":
		return parseDurField(k, v, &s.Duration)
	case "rate":
		return parseFloatField(k, v, &s.Rate)
	case "alpha":
		return parseFloatField(k, v, &s.ParetoAlpha)
	case "ramp":
		r, err := ParseRamp(v)
		if err != nil {
			return err
		}
		s.Ramp = r
	case "tenants":
		return parseIntField(k, v, &s.Tenants)
	case "zipf":
		return parseFloatField(k, v, &s.ZipfS)
	case "streams":
		return parseIntField(k, v, &s.Streams)
	case "mix":
		m, err := ParseMix(v)
		if err != nil {
			return err
		}
		s.Mix = m
	case "engines":
		return parseIntField(k, v, &s.Engines)
	case "workers":
		return parseIntField(k, v, &s.Workers)
	case "queue":
		return parseIntField(k, v, &s.Queue)
	case "svc":
		tiers, err := ParseDurList("svc", v)
		if err != nil {
			return err
		}
		s.SvcTiers = tiers
	case "ladder-high":
		return parseFloatField(k, v, &s.LadderHigh)
	case "ladder-low":
		return parseFloatField(k, v, &s.LadderLow)
	case "ladder-hyst":
		return parseIntField(k, v, &s.LadderHyst)
	case "shed-high":
		return parseFloatField(k, v, &s.ShedHigh)
	case "shed-low":
		return parseFloatField(k, v, &s.ShedLow)
	case "shed-hyst":
		return parseIntField(k, v, &s.ShedHyst)
	case "qos-rate":
		return parseFloatField(k, v, &s.QoSRate)
	case "qos-burst":
		return parseFloatField(k, v, &s.QoSBurst)
	case "deadline":
		return parseDurField(k, v, &s.Deadline)
	case "vnodes":
		return parseIntField(k, v, &s.VNodes)
	case "spill":
		return parseIntField(k, v, &s.Spill)
	case "stall-frac":
		return parseFloatField(k, v, &s.StallFrac)
	case "stall-timeout":
		return parseDurField(k, v, &s.StallTimeout)
	case "retries":
		return parseIntField(k, v, &s.Retries)
	case "hedge-delay":
		return parseDurField(k, v, &s.HedgeDelay)
	case "hedge-budget":
		return parseFloatField(k, v, &s.HedgeBudget)
	default:
		return specErr(k, v, "unknown key")
	}
	return nil
}

func parseIntField(k, v string, dst *int) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return specErr(k, v, "want integer")
	}
	*dst = n
	return nil
}

func parseFloatField(k, v string, dst *float64) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return specErr(k, v, "want finite number")
	}
	*dst = f
	return nil
}

func parseDurField(k, v string, dst *time.Duration) error {
	d, err := time.ParseDuration(v)
	if err != nil {
		return specErr(k, v, "want duration (e.g. 2s, 500ms)")
	}
	*dst = d
	return nil
}

// ParseRamp parses a diurnal schedule "at:mult,at:mult,..." with positions
// as fractions of the scenario duration, e.g. "0:1,0.5:3,1:1" for a ramp to
// 3× at the midpoint and back.
func ParseRamp(v string) ([]RampPoint, error) {
	if strings.TrimSpace(v) == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	ramp := make([]RampPoint, 0, len(parts))
	for _, p := range parts {
		at, mult, ok := strings.Cut(strings.TrimSpace(p), ":")
		if !ok {
			return nil, specErr("ramp", p, "want at:mult breakpoints")
		}
		a, err1 := strconv.ParseFloat(at, 64)
		m, err2 := strconv.ParseFloat(mult, 64)
		if err1 != nil || err2 != nil {
			return nil, specErr("ramp", p, "want numeric at:mult")
		}
		ramp = append(ramp, RampPoint{At: a, Mult: m})
	}
	return ramp, nil
}

// ParseMix parses a priority class mix "high,normal,low", e.g.
// "0.2,0.5,0.3".
func ParseMix(v string) ([numPriorities]float64, error) {
	var mix [numPriorities]float64
	parts := strings.Split(v, ",")
	if len(parts) != numPriorities {
		return mix, specErr("mix", v, fmt.Sprintf("want %d comma-separated fractions (high,normal,low)", numPriorities))
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return mix, specErr("mix", p, "want number")
		}
		mix[i] = f
	}
	return mix, nil
}

// ParseDurList parses a comma-separated duration list, e.g. "2ms,1ms,700us".
func ParseDurList(field, v string) ([]time.Duration, error) {
	if strings.TrimSpace(v) == "" {
		return nil, specErr(field, v, "want comma-separated durations")
	}
	parts := strings.Split(v, ",")
	out := make([]time.Duration, 0, len(parts))
	for _, p := range parts {
		d, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil {
			return nil, specErr(field, p, "want duration (e.g. 2ms)")
		}
		out = append(out, d)
	}
	return out, nil
}

// ParseMults parses the overload multiplier list, e.g. "1,10,100". Every
// failure is a *SpecError.
func ParseMults(v string) ([]float64, error) {
	if strings.TrimSpace(v) == "" {
		return nil, specErr("mults", v, "want comma-separated multipliers")
	}
	parts := strings.Split(v, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, specErr("mults", p, "want number")
		}
		if !(f > 0) || f > 1e4 {
			return nil, specErr("mults", p, "multipliers must be in (0, 1e4]")
		}
		out = append(out, f)
	}
	return out, nil
}
