package loadgen

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Harness tests: bit-exact determinism, the accounting conservation laws,
// sampler statistics, ramp evaluation, and the spec parser's typed errors.
// Everything runs in virtual time — no sleeps, no wall-clock dependence.

func TestRunDeterminism(t *testing.T) {
	spec := Quick()
	for _, mult := range []float64{1, 10, 100} {
		a, err := Run(spec, mult)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(spec, mult)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("mult %g: two same-seed runs disagree:\n%+v\n%+v", mult, a.Counts, b.Counts)
		}
	}
	// A different seed must actually change the run (the seed is wired in).
	other := spec
	other.Seed = spec.Seed + 1
	a, _ := Run(spec, 10)
	b, err := Run(other, 10)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatal("different seeds produced identical counts; seed is not wired through")
	}
}

func TestRunConservationAndClassTotals(t *testing.T) {
	spec := Quick()
	spec.QoSRate = 20 // exercise all three shed causes
	spec.QoSBurst = 5
	spec.Deadline = 2 * time.Millisecond
	spec.StallFrac = 0.1 // and the survivability layer, all recovery paths on
	spec.Retries = 1
	spec.HedgeDelay = time.Millisecond
	for _, mult := range []float64{1, 20} {
		m, err := Run(spec, mult)
		if err != nil {
			t.Fatal(err)
		}
		if m.Offered != m.Admitted+m.Shed() {
			t.Fatalf("mult %g: offered %d != admitted %d + shed %d", mult, m.Offered, m.Admitted, m.Shed())
		}
		if m.Admitted != m.Completed+m.FailedDeadline+m.FailedStall {
			t.Fatalf("mult %g: admitted %d != completed %d + failed %d+%d", mult, m.Admitted, m.Completed, m.FailedDeadline, m.FailedStall)
		}
		var offered, completed, shed, failed, degraded uint64
		for _, c := range m.Classes {
			offered += c.Offered
			completed += c.Completed
			shed += c.Shed
			failed += c.Failed
		}
		for _, n := range m.Degraded {
			degraded += n
		}
		if offered != m.Offered || completed != m.Completed || shed != m.Shed() || failed != m.FailedDeadline+m.FailedStall {
			t.Fatalf("mult %g: class totals (%d/%d/%d/%d) disagree with aggregates (%d/%d/%d/%d)",
				mult, offered, completed, shed, failed, m.Offered, m.Completed, m.Shed(), m.FailedDeadline+m.FailedStall)
		}
		if degraded != m.Completed {
			t.Fatalf("mult %g: per-tier completions %d != completed %d", mult, degraded, m.Completed)
		}
		if m.FairnessJain < 0 || m.FairnessJain > 1+1e-9 {
			t.Fatalf("mult %g: fairness %f out of [0,1]", mult, m.FairnessJain)
		}
	}
}

func TestRunOverloadBehaviour(t *testing.T) {
	spec := Quick()
	base, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	over, err := Run(spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	if over.Offered <= 10*base.Offered {
		t.Fatalf("50x offered %d not ~50x of 1x offered %d", over.Offered, base.Offered)
	}
	sf := func(m Metrics) float64 { return float64(m.Counts.Shed()) / float64(m.Offered) }
	if sf(over) <= sf(base) {
		t.Fatalf("shed fraction did not grow under overload: %f -> %f", sf(base), sf(over))
	}
	if over.FullFidelityFrac >= 1 {
		t.Fatal("50x overload never degraded a frame; ladder is not wired")
	}
	if over.ShedLevelMax == 0 {
		t.Fatal("50x overload never raised the shed level")
	}
	// The shed controller never sheds the high class: every shed high frame
	// must come from token buckets or full queues, which are priority-blind.
	high := over.Classes[0]
	if high.Priority != "high" {
		t.Fatalf("class order: %q first, want high", high.Priority)
	}
	if high.Shed > over.ShedThrottled+over.ShedQueueFull {
		t.Fatalf("high class shed %d exceeds priority-blind causes %d+%d: overload shed hit the top class",
			high.Shed, over.ShedThrottled, over.ShedQueueFull)
	}
}

func TestRunDeadlineAccounting(t *testing.T) {
	spec := Quick()
	spec.Queue = 64 // deep queues: long waits instead of queue sheds
	spec.Deadline = time.Millisecond
	m, err := Run(spec, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.FailedDeadline == 0 {
		t.Fatal("deep queues at 20x with a 1ms deadline dropped nothing")
	}
	if m.Admitted != m.Completed+m.FailedDeadline {
		t.Fatalf("admitted %d != completed %d + deadline-failed %d", m.Admitted, m.Completed, m.FailedDeadline)
	}
}

func TestRunQoSThrottles(t *testing.T) {
	spec := Quick()
	spec.QoSRate = 10
	spec.QoSBurst = 2
	m, err := Run(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.ShedThrottled == 0 {
		t.Fatal("zipf-skewed 10x load against 10fps tenant buckets throttled nothing")
	}
}

// A stall storm with no recovery policy: every stalled frame terminally
// fails, the counters stay conserved, and two same-seed runs agree bit for
// bit. Survivability counters must stay zero when StallFrac is zero — even
// with retries/hedging configured — so plain runs are unchanged.
func TestRunStallStormConservation(t *testing.T) {
	spec := Quick()
	spec.StallFrac = 0.1
	for _, mult := range []float64{1, 10} {
		m, err := Run(spec, mult)
		if err != nil {
			t.Fatal(err)
		}
		if m.Stalled == 0 {
			t.Fatalf("mult %g: 10%% stall injection stalled nothing", mult)
		}
		if m.FailedStall == 0 {
			t.Fatalf("mult %g: stalls with no recovery policy failed nothing", mult)
		}
		if m.Admitted != m.Completed+m.FailedDeadline+m.FailedStall {
			t.Fatalf("mult %g: admitted %d != completed %d + failed %d+%d",
				mult, m.Admitted, m.Completed, m.FailedDeadline, m.FailedStall)
		}
		again, err := Run(spec, mult)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m.Counts, again.Counts) {
			t.Fatalf("mult %g: stall-storm runs not reproducible:\n%+v\n%+v", mult, m.Counts, again.Counts)
		}
	}

	off := Quick()
	off.Retries = 2
	off.HedgeDelay = time.Millisecond
	m, err := Run(off, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled+m.FailedStall+m.Retried+m.Hedged+m.HedgeWins != 0 {
		t.Fatalf("StallFrac=0 run has survivability counters: %+v", m.Counts)
	}
}

// Retries buy goodput back: re-dispatching stalled frames on the next ring
// candidate must recover most of what the storm killed.
func TestRunRetriesRecoverStalledFrames(t *testing.T) {
	spec := Quick()
	spec.StallFrac = 0.1
	spec.StallTimeout = spec.SvcTiers[0] // snappy watchdog: recovery signal, not wedge cost
	none, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec.Retries = 2
	retry, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if retry.Retried == 0 {
		t.Fatal("retry policy never retried a stalled frame")
	}
	if retry.FailedStall >= none.FailedStall {
		t.Fatalf("retries did not reduce stall failures: %d -> %d", none.FailedStall, retry.FailedStall)
	}
	if retry.Completed <= none.Completed {
		t.Fatalf("retries did not buy goodput: completed %d -> %d", none.Completed, retry.Completed)
	}
}

// The retry path is deadline-budget-aware: with every attempt stalling and
// the second watchdog firing past the deadline, each frame retries at most
// once and nothing completes.
func TestRunRetryRespectsDeadlineBudget(t *testing.T) {
	spec := Quick()
	spec.StallFrac = 1
	spec.Retries = 8
	spec.StallTimeout = 2 * time.Millisecond
	spec.Deadline = 3 * time.Millisecond
	m, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 0 {
		t.Fatalf("every attempt stalls, yet %d frames completed", m.Completed)
	}
	if m.Retried == 0 {
		t.Fatal("first watchdog fires inside the budget, yet nothing retried")
	}
	if m.Retried > m.Admitted {
		t.Fatalf("retried %d > admitted %d: budget did not stop the second retry", m.Retried, m.Admitted)
	}
}

// Hedging wins races against wedged workers, never exceeds its launch
// budget, and hedge wins never exceed hedges launched.
func TestRunHedgingWinsRaces(t *testing.T) {
	spec := Quick()
	spec.StallFrac = 0.1
	none, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec.HedgeDelay = time.Millisecond
	spec.HedgeBudget = 1
	m, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hedged == 0 || m.HedgeWins == 0 {
		t.Fatalf("hedging launched %d won %d; expected both > 0", m.Hedged, m.HedgeWins)
	}
	if m.HedgeWins > m.Hedged {
		t.Fatalf("hedge wins %d > hedges %d", m.HedgeWins, m.Hedged)
	}
	if m.Completed <= none.Completed {
		t.Fatalf("hedging did not buy goodput: completed %d -> %d", none.Completed, m.Completed)
	}
	capped := spec
	capped.HedgeBudget = 0.01
	c, err := Run(capped, 1)
	if err != nil {
		t.Fatal(err)
	}
	if float64(c.Hedged) > 0.01*float64(c.Offered)+1 {
		t.Fatalf("hedge budget 1%% of %d offered exceeded: %d hedges", c.Offered, c.Hedged)
	}
}

func TestRampShapesArrivals(t *testing.T) {
	spec := Quick()
	spec.Ramp = []RampPoint{{At: 0, Mult: 0.1}, {At: 1, Mult: 0.1}}
	low, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Run(Quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// A flat 0.1× schedule should cut arrivals by roughly 10×.
	if low.Offered >= flat.Offered/2 {
		t.Fatalf("0.1x ramp offered %d vs flat %d; schedule not applied", low.Offered, flat.Offered)
	}

	s, err := newSim(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.rampMult(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("rampMult(0) = %g, want 0.1", got)
	}
	s.spec.Ramp = []RampPoint{{At: 0, Mult: 1}, {At: 0.5, Mult: 3}, {At: 1, Mult: 1}}
	mid := s.rampMult(s.durNs / 4) // halfway up the first segment: 2.0
	if math.Abs(mid-2) > 1e-9 {
		t.Fatalf("rampMult(quarter) = %g, want 2 (linear interpolation)", mid)
	}
	if got := s.rampMult(s.durNs); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rampMult(end) = %g, want 1", got)
	}
	// Zero-rate segments clamp instead of stalling the arrival chain.
	s.spec.Ramp = []RampPoint{{At: 0, Mult: 0}, {At: 1, Mult: 0}}
	if got := s.rampMult(0); got <= 0 {
		t.Fatalf("rampMult clamp = %g, want > 0", got)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.2)
	rng := NewRNG(42)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Pick(rng.Float64())]++
	}
	if !(counts[0] > counts[9] && counts[9] > counts[49]) {
		t.Fatalf("zipf ranks not ordered: c0=%d c9=%d c49=%d", counts[0], counts[9], counts[49])
	}
	if counts[0] < 5*counts[49] {
		t.Fatalf("zipf skew too weak: c0=%d c49=%d", counts[0], counts[49])
	}
	// s = 0 degenerates to uniform: head and tail within 2x.
	u := NewZipf(10, 0)
	uc := make([]int, 10)
	for i := 0; i < 100000; i++ {
		uc[u.Pick(rng.Float64())]++
	}
	if uc[0] > 2*uc[9] {
		t.Fatalf("uniform zipf skewed: %v", uc)
	}
}

func TestParetoMean(t *testing.T) {
	// With alpha = 3 the variance is finite, so 200k draws pin the sample
	// mean tightly. ParetoXm is defined to make the mean exactly 1/rate.
	const rate, alpha = 1000.0, 3.0
	rng := NewRNG(7)
	xm := ParetoXm(alpha, rate)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := rng.Pareto(alpha, xm)
		if d < xm {
			t.Fatalf("draw %g below scale %g", d, xm)
		}
		sum += d
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("sample mean %g, want 1/rate = %g within 10%%", mean, 1/rate)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNG streams diverge")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produce equal first draw")
	}
}

func TestParseSpecTable(t *testing.T) {
	good, err := ParseSpec("seed=9;engines=8;workers=4;rate=500;alpha=2;zipf=0.9;mix=0.1,0.6,0.3;svc=2ms,1ms;ramp=0:1,1:2;deadline=5ms;stall-frac=0.1;stall-timeout=3ms;retries=2;hedge-delay=1ms;hedge-budget=0.2", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if good.Seed != 9 || good.Engines != 8 || good.Workers != 4 || good.Rate != 500 ||
		len(good.SvcTiers) != 2 || good.SvcTiers[1] != time.Millisecond ||
		len(good.Ramp) != 2 || good.Deadline != 5*time.Millisecond ||
		good.StallFrac != 0.1 || good.StallTimeout != 3*time.Millisecond ||
		good.Retries != 2 || good.HedgeDelay != time.Millisecond || good.HedgeBudget != 0.2 {
		t.Fatalf("parsed spec wrong: %+v", good)
	}
	if got, _ := ParseSpec("", Quick()); !reflect.DeepEqual(got, Quick()) {
		t.Fatal("empty override changed the base spec")
	}

	bad := []struct{ in, field string }{
		{"bogus=1", "bogus"},
		{"seed", "spec"}, // missing '=': the pair itself is the offender
		{"seed=x", "seed"},
		{"engines=0", "engines"},
		{"engines=9999", "engines"},
		{"rate=NaN", "rate"},
		{"rate=+Inf", "rate"},
		{"alpha=1", "alpha"},
		{"mix=1,2", "mix"},
		{"mix=-1,1,1", "mix"},
		{"svc=", "svc"},
		{"svc=2ms,nope", "svc"},
		{"ramp=5", "ramp"},
		{"ramp=0.9:1,0.1:1", "ramp"},
		{"duration=-1s", "duration"},
		{"duration=2h", "duration"},
		{"zipf=99", "zipf"},
		{"shed-high=2", "shed-high"},
		{"rate=1e7;duration=1h", "rate"}, // > 5e7 arrivals
		{"stall-frac=2", "stall-frac"},
		{"stall-frac=NaN", "stall-frac"},
		{"stall-timeout=-1ms", "stall-timeout"},
		{"retries=9", "retries"},
		{"hedge-delay=2h", "hedge-delay"},
		{"hedge-budget=-0.1", "hedge-budget"},
	}
	for _, tc := range bad {
		_, err := ParseSpec(tc.in, Quick())
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("%q: err = %v, want *SpecError", tc.in, err)
		}
		if se.Field != tc.field {
			t.Fatalf("%q: field = %q, want %q", tc.in, se.Field, tc.field)
		}
		if !strings.Contains(se.Error(), tc.field) {
			t.Fatalf("%q: message %q does not name the field", tc.in, se.Error())
		}
	}
}

func TestParseMults(t *testing.T) {
	got, err := ParseMults(" 1, 10 ,100 ")
	if err != nil || !reflect.DeepEqual(got, []float64{1, 10, 100}) {
		t.Fatalf("got %v err %v", got, err)
	}
	for _, in := range []string{"", "0", "-1", "x", "1e9", "NaN"} {
		var se *SpecError
		if _, err := ParseMults(in); !errors.As(err, &se) {
			t.Fatalf("%q: err = %v, want *SpecError", in, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var se *SpecError
	if _, err := Run(Spec{}, 1); !errors.As(err, &se) {
		t.Fatalf("zero spec: %v, want *SpecError", err)
	}
	if _, err := Run(Quick(), 0); !errors.As(err, &se) {
		t.Fatalf("mult 0: %v, want *SpecError", err)
	}
	if _, err := Run(Quick(), math.NaN()); !errors.As(err, &se) {
		t.Fatalf("mult NaN: %v, want *SpecError", err)
	}
}

func TestBuildReport(t *testing.T) {
	spec := Quick()
	rep, err := BuildReport(spec, []float64{1, 10}, []float64{1, 2, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "serve_fleet" {
		t.Fatalf("bench tag %q", rep.Bench)
	}
	if len(rep.Scenarios) != 2 || len(rep.Crossover) != 3 {
		t.Fatalf("sections: %d scenarios %d crossover", len(rep.Scenarios), len(rep.Crossover))
	}
	if !rep.Spec.RateAuto || rep.Spec.RateFPS <= 0 {
		t.Fatalf("spec summary rate: %+v", rep.Spec)
	}
	for _, p := range rep.Crossover {
		if p.ShedFrac < 0 || p.ShedFrac > 1 || p.DegradedFrac < 0 || p.DegradedFrac > 1 {
			t.Fatalf("crossover fractions out of range: %+v", p)
		}
	}
	// The crossover and grid sections agree where they overlap (same seed,
	// same semantics).
	if rep.Crossover[0].GoodputFPS != rep.Scenarios[0].GoodputFPS {
		t.Fatal("crossover and grid disagree at mult 1")
	}
	// The survivability sweep: one row per (multiplier, policy), retries and
	// hedging buying goodput back at every multiplier.
	if len(rep.Survivability) != 2*3 {
		t.Fatalf("survivability rows: %d, want 6", len(rep.Survivability))
	}
	for i := 0; i < len(rep.Survivability); i += 3 {
		none, retry, hedge := rep.Survivability[i], rep.Survivability[i+1], rep.Survivability[i+2]
		if none.Policy != "none" || retry.Policy != "retry2" || hedge.Policy != "retry2+hedge" {
			t.Fatalf("policy order at %d: %s/%s/%s", i, none.Policy, retry.Policy, hedge.Policy)
		}
		if none.Stalled == 0 || none.FailedStall == 0 {
			t.Fatalf("storm row stalled nothing: %+v", none)
		}
		if retry.Retried == 0 || retry.GoodFrac <= none.GoodFrac {
			t.Fatalf("retry policy bought no goodput: none %.4f retry %.4f (%d retried)",
				none.GoodFrac, retry.GoodFrac, retry.Retried)
		}
		if hedge.Hedged == 0 {
			t.Fatalf("hedge policy launched no hedges: %+v", hedge)
		}
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"bench": "serve_fleet"`, `"crossover"`, `"scenarios"`, `"p99_ms"`, `"fairness_jain"`, `"survivability"`, `"hedge_wins"`} {
		if !strings.Contains(sb.String(), key) {
			t.Fatalf("report JSON missing %s", key)
		}
	}
	// Count lines are stable across same-seed rebuilds — the CI determinism
	// contract.
	rep2, err := BuildReport(spec, []float64{1, 10}, []float64{1, 2, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Scenarios {
		if CountLine(rep.Scenarios[i]) != CountLine(rep2.Scenarios[i]) {
			t.Fatalf("count line %d not reproducible", i)
		}
	}
	for i := range rep.Survivability {
		if SurvLine(rep.Survivability[i]) != SurvLine(rep2.Survivability[i]) {
			t.Fatalf("survivability line %d not reproducible", i)
		}
	}
}
