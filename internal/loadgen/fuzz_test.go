package loadgen

import (
	"errors"
	"testing"
)

// FuzzLoadgenConfig drives attacker-shaped scenario strings through the
// spec and multiplier parsers: they must never panic, every rejection must
// be a typed *SpecError naming a field, and every accepted spec must be
// runnable (Validate passes — Run trusts that contract).
func FuzzLoadgenConfig(f *testing.F) {
	for _, s := range []string{
		"",
		"seed=7;engines=3",
		"duration=400ms;rate=500;alpha=1.5",
		"mix=0.2,0.5,0.3;svc=2ms,1ms,700us",
		"ramp=0:1,0.5:3,1:0.2;zipf=1.1;tenants=1000",
		"qos-rate=50;qos-burst=10;deadline=5ms",
		"shed-high=0.55;shed-low=0.1;shed-hyst=8",
		"rate=NaN",
		"rate=+Inf;alpha=-1",
		"unknown=1",
		";;;",
		"seed=;=x;ramp=::",
		"svc=9999999h",
		"rate=1e7;duration=1h",
		"mix=1e308,1e308,1e308",
		"stall-frac=0.1;stall-timeout=3ms;retries=2;hedge-delay=1ms;hedge-budget=0.2",
		"stall-frac=2;retries=-1",
		"hedge-budget=NaN;stall-timeout=99h",
	} {
		f.Add(s, "1,10,100")
	}
	f.Fuzz(func(t *testing.T, scenario, mults string) {
		spec, err := ParseSpec(scenario, Quick())
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseSpec(%q): untyped error %T %v", scenario, err, err)
			}
			if se.Field == "" || se.Reason == "" {
				t.Fatalf("ParseSpec(%q): empty SpecError %+v", scenario, se)
			}
		} else if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a spec Validate rejects: %v", scenario, verr)
		}
		if _, err := ParseMults(mults); err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseMults(%q): untyped error %T %v", mults, err, err)
			}
		}
	})
}
