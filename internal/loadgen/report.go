package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// The BENCH_serve.json schema: one report carries the pinned spec, the
// optional calibration that produced the per-tier service times, the
// overload-grid scenarios (1×/10×/100× by default) and the denser
// shed-vs-degrade crossover sweep. Every count in it is reproducible from
// (spec, seed); the calibration block records where the measured inputs
// came from.

// Calibration records how SvcTiers were measured (by edgepc-loadgen
// -calibrate); nil when the spec's pinned defaults were used.
type Calibration struct {
	Workload  string    `json:"workload"`
	Config    string    `json:"config"`
	Frames    int       `json:"frames"`
	SvcNsTier []int64   `json:"svc_ns_tier"`
	Speedup   []float64 `json:"tier_speedup"` // svc[0]/svc[t]
}

// SpecSummary is the report's pinned-input block: enough to re-run the
// exact scenario grid.
type SpecSummary struct {
	Seed        uint64      `json:"seed"`
	DurationMs  float64     `json:"duration_ms"`
	RateFPS     float64     `json:"rate_fps"` // effective 1× rate (auto-resolved)
	RateAuto    bool        `json:"rate_auto"`
	ParetoAlpha float64     `json:"pareto_alpha"`
	Ramp        []RampPoint `json:"ramp,omitempty"`
	Tenants     int         `json:"tenants"`
	ZipfS       float64     `json:"zipf_s"`
	Streams     int         `json:"streams"`
	Mix         []float64   `json:"mix_high_normal_low"`
	Engines     int         `json:"engines"`
	Workers     int         `json:"workers"`
	QueueDepth  int         `json:"queue_depth"`
	SvcUsTiers  []float64   `json:"svc_us_tiers"`
	LadderHigh  float64     `json:"ladder_high"`
	LadderLow   float64     `json:"ladder_low"`
	LadderHyst  int         `json:"ladder_hyst"`
	ShedHigh    float64     `json:"shed_high"`
	ShedLow     float64     `json:"shed_low"`
	ShedHyst    int         `json:"shed_hyst"`
	QoSRate     float64     `json:"qos_rate"`
	QoSBurst    float64     `json:"qos_burst"`
	DeadlineMs  float64     `json:"deadline_ms"`
	VNodes      int         `json:"vnodes"`
	Spill       int         `json:"spill"`

	StallFrac      float64 `json:"stall_frac"`
	StallTimeoutMs float64 `json:"stall_timeout_ms"`
	Retries        int     `json:"retries"`
	HedgeDelayMs   float64 `json:"hedge_delay_ms"`
	HedgeBudget    float64 `json:"hedge_budget"`
}

// CrossoverPoint is one sample of the shed-vs-degrade curve: at overload
// Mult, what fraction of offered load was shed by the fleet controller
// versus absorbed by the engines' degradation ladder.
type CrossoverPoint struct {
	Mult         float64 `json:"mult"`
	ShedFrac     float64 `json:"shed_frac"`     // shed (all causes) / offered
	DegradedFrac float64 `json:"degraded_frac"` // completions below full fidelity / offered
	GoodputFPS   float64 `json:"goodput_fps"`
	P99Ms        float64 `json:"p99_ms"`
	ShedLevelMax int     `json:"shed_level_max"`
}

// SurvivabilityPoint is one goodput-under-stall-storm row: the overload
// multiplier, the recovery policy (none / retries / retries+hedging), and
// what survived the storm.
type SurvivabilityPoint struct {
	Mult        float64 `json:"mult"`
	Policy      string  `json:"policy"`
	StallFrac   float64 `json:"stall_frac"`
	GoodputFPS  float64 `json:"goodput_fps"`
	GoodFrac    float64 `json:"goodput_frac"` // completed / offered
	Stalled     uint64  `json:"stalled"`
	FailedStall uint64  `json:"failed_stall"`
	Retried     uint64  `json:"retried"`
	Hedged      uint64  `json:"hedged"`
	HedgeWins   uint64  `json:"hedge_wins"`
	P99Ms       float64 `json:"p99_ms"`
}

// Report is the full BENCH_serve.json document.
type Report struct {
	Bench         string               `json:"bench"` // always "serve_fleet"
	Spec          SpecSummary          `json:"spec"`
	Calibration   *Calibration         `json:"calibration,omitempty"`
	Scenarios     []Scenario           `json:"scenarios"`
	Crossover     []CrossoverPoint     `json:"crossover"`
	Survivability []SurvivabilityPoint `json:"survivability"`
}

// Summarize pins a spec into its report block.
func Summarize(spec Spec) SpecSummary {
	svc := make([]float64, len(spec.SvcTiers))
	for i, d := range spec.SvcTiers {
		svc[i] = float64(d) / float64(time.Microsecond)
	}
	return SpecSummary{
		Seed:        spec.Seed,
		DurationMs:  float64(spec.Duration) / float64(time.Millisecond),
		RateFPS:     spec.EffectiveRate(),
		RateAuto:    spec.Rate <= 0,
		ParetoAlpha: spec.ParetoAlpha,
		Ramp:        spec.Ramp,
		Tenants:     spec.Tenants,
		ZipfS:       spec.ZipfS,
		Streams:     spec.Streams,
		Mix:         spec.Mix[:],
		Engines:     spec.Engines,
		Workers:     spec.Workers,
		QueueDepth:  spec.queueDepth(),
		SvcUsTiers:  svc,
		LadderHigh:  spec.LadderHigh,
		LadderLow:   spec.LadderLow,
		LadderHyst:  spec.LadderHyst,
		ShedHigh:    spec.ShedHigh,
		ShedLow:     spec.ShedLow,
		ShedHyst:    spec.ShedHyst,
		QoSRate:     spec.QoSRate,
		QoSBurst:    spec.QoSBurst,
		DeadlineMs:  float64(spec.Deadline) / float64(time.Millisecond),
		VNodes:      spec.VNodes,
		Spill:       spec.Spill,

		StallFrac:      spec.StallFrac,
		StallTimeoutMs: float64(spec.StallTimeout) / float64(time.Millisecond),
		Retries:        spec.Retries,
		HedgeDelayMs:   float64(spec.HedgeDelay) / float64(time.Millisecond),
		HedgeBudget:    spec.HedgeBudget,
	}
}

// BuildReport runs the overload grid, the crossover sweep and the
// goodput-under-stall-storm survivability sweep and assembles the report.
// Crossover multipliers already present in the grid reuse the same run
// semantics (same seed), so the two sections agree wherever they overlap.
func BuildReport(spec Spec, mults, crossover []float64, cal *Calibration) (*Report, error) {
	scenarios, err := RunGrid(spec, mults)
	if err != nil {
		return nil, err
	}
	cross, err := RunGrid(spec, crossover)
	if err != nil {
		return nil, err
	}
	surv, err := buildSurvivability(spec, mults)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Bench:         "serve_fleet",
		Spec:          Summarize(spec),
		Calibration:   cal,
		Scenarios:     scenarios,
		Crossover:     make([]CrossoverPoint, 0, len(cross)),
		Survivability: surv,
	}
	for _, sc := range cross {
		rep.Crossover = append(rep.Crossover, crossoverPoint(sc))
	}
	return rep, nil
}

// buildSurvivability runs the stall-storm sweep: the base spec with 10%
// of dispatched attempts stalling (or the spec's own StallFrac when set),
// once per recovery policy — no recovery, two retries, two retries plus
// hedging — at every grid multiplier. The rows quantify how much goodput
// each layer of DESIGN.md §15 buys back under a stall storm.
func buildSurvivability(spec Spec, mults []float64) ([]SurvivabilityPoint, error) {
	storm := spec
	if storm.StallFrac <= 0 {
		storm.StallFrac = 0.1
	}
	if storm.StallTimeout <= 0 {
		// A snappy watchdog (one tier-0 service time) so the rows measure
		// what the recovery policies buy, not watchdog detection latency:
		// with the sim's laxer 4× default the wedged-worker capacity loss
		// saturates the fleet and drowns the retry/hedge signal.
		storm.StallTimeout = spec.SvcTiers[0]
	}
	none := storm
	none.Retries, none.HedgeDelay, none.HedgeBudget = 0, 0, 0
	retry := none
	retry.Retries = 2
	hedged := retry
	hedged.HedgeDelay = 2 * spec.SvcTiers[0]
	hedged.HedgeBudget = 0.1
	policies := []struct {
		name string
		spec Spec
	}{{"none", none}, {"retry2", retry}, {"retry2+hedge", hedged}}
	out := make([]SurvivabilityPoint, 0, len(policies)*len(mults))
	for _, mult := range mults {
		for _, p := range policies {
			m, err := Run(p.spec, mult)
			if err != nil {
				return nil, fmt.Errorf("survivability %s mult %g: %w", p.name, mult, err)
			}
			pt := SurvivabilityPoint{
				Mult: mult, Policy: p.name, StallFrac: p.spec.StallFrac,
				GoodputFPS: m.GoodputFPS, Stalled: m.Stalled, FailedStall: m.FailedStall,
				Retried: m.Retried, Hedged: m.Hedged, HedgeWins: m.HedgeWins, P99Ms: m.P99Ms,
			}
			if m.Offered > 0 {
				pt.GoodFrac = float64(m.Completed) / float64(m.Offered)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func crossoverPoint(sc Scenario) CrossoverPoint {
	p := CrossoverPoint{
		Mult:         sc.Mult,
		GoodputFPS:   sc.GoodputFPS,
		P99Ms:        sc.P99Ms,
		ShedLevelMax: sc.ShedLevelMax,
	}
	if sc.Offered > 0 {
		p.ShedFrac = float64(sc.Counts.Shed()) / float64(sc.Offered)
		var degraded uint64
		for t, n := range sc.Degraded {
			if t > 0 {
				degraded += n
			}
		}
		p.DegradedFrac = float64(degraded) / float64(sc.Offered)
	}
	return p
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CountLine renders a scenario's outcome counters as one stable line —
// what the CI determinism check diffs across two same-seed runs.
func CountLine(sc Scenario) string {
	return fmt.Sprintf("scenario mult=%g offered=%d admitted=%d completed=%d shed_throttle=%d shed_overload=%d shed_queue=%d failed_deadline=%d failed_stall=%d stalled=%d retried=%d hedged=%d hedge_wins=%d step_downs=%d step_ups=%d shed_level_max=%d",
		sc.Mult, sc.Offered, sc.Admitted, sc.Completed, sc.ShedThrottled,
		sc.ShedOverload, sc.ShedQueueFull, sc.FailedDeadline,
		sc.FailedStall, sc.Stalled, sc.Retried, sc.Hedged, sc.HedgeWins,
		sc.StepDowns, sc.StepUps, sc.ShedLevelMax)
}

// SurvLine renders one survivability row as a stable count line, diffed by
// the CI determinism check alongside CountLine.
func SurvLine(p SurvivabilityPoint) string {
	return fmt.Sprintf("survivability mult=%g policy=%s stalled=%d failed_stall=%d retried=%d hedged=%d hedge_wins=%d goodput_frac=%.4f",
		p.Mult, p.Policy, p.Stalled, p.FailedStall, p.Retried, p.Hedged, p.HedgeWins, p.GoodFrac)
}
