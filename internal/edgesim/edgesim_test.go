package edgesim

import (
	"testing"
	"time"

	"repro/internal/model"
)

func dev() *Device { return JetsonAGXXavier() }

func TestFPSVsMortonSamplingLatency(t *testing.T) {
	// The §4.2 anchor shape: FPS on the 40 256-point Bunny sampling 1 024
	// points is roughly two orders of magnitude slower than the Morton
	// sampler.
	d := dev()
	cfg := Config{Batch: 1}
	fps := d.StageLatency(model.StageRecord{Stage: model.StageSample, Algo: "fps", N: 40256, Q: 1024}, cfg)
	morton := d.StageLatency(model.StageRecord{Stage: model.StageSample, Algo: "morton", N: 40256, Q: 1024}, cfg)
	ratio := float64(fps) / float64(morton)
	if ratio < 10 || ratio > 500 {
		t.Fatalf("FPS/morton ratio = %.1f (fps=%v morton=%v), want the paper's ~80× order", ratio, fps, morton)
	}
	if fps < 10*time.Millisecond || fps > 500*time.Millisecond {
		t.Fatalf("FPS latency %v implausible vs the paper's 81.7 ms anchor", fps)
	}
}

func TestMortonGenAnchor(t *testing.T) {
	// §5.1.2: generating Morton codes for 8 192 points ≈ 0.1 ms. The
	// structurize stage also pays the sort, so check the encode component
	// via throughput directly.
	d := dev()
	encode := float64(8192) / d.MortonThroughput
	if encode < 50e-6 || encode > 200e-6 {
		t.Fatalf("morton encode for 8192 pts = %v s, want ≈1e-4", encode)
	}
}

func TestBruteSearchQuadraticInN(t *testing.T) {
	d := dev()
	cfg := Config{Batch: 1}
	rec := func(n int) model.StageRecord {
		return model.StageRecord{Stage: model.StageNeighbor, Algo: "knn-brute", N: n, Q: n, K: 8}
	}
	small := d.StageLatency(rec(1024), cfg) - d.KernelLaunch
	big := d.StageLatency(rec(4096), cfg) - d.KernelLaunch
	ratio := float64(big) / float64(small)
	if ratio < 14 || ratio > 18 {
		t.Fatalf("4× points → %.1f× latency, want ≈16 (quadratic)", ratio)
	}
}

func TestWindowSearchLinearInW(t *testing.T) {
	d := dev()
	cfg := Config{Batch: 1}
	rec := func(w int) model.StageRecord {
		return model.StageRecord{Stage: model.StageNeighbor, Algo: "morton-window", N: 8192, Q: 2048, K: 8, W: w}
	}
	w16 := d.StageLatency(rec(16), cfg) - d.KernelLaunch
	w64 := d.StageLatency(rec(64), cfg) - d.KernelLaunch
	ratio := float64(w64) / float64(w16)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4× window → %.2f× latency, want ≈4", ratio)
	}
	// Pure index pick (W=K) is cheaper than any distance-ranked window.
	pure := d.StageLatency(model.StageRecord{Stage: model.StageNeighbor, Algo: "morton-window", N: 8192, Q: 2048, K: 8, W: 8}, cfg)
	if pure >= w16+d.KernelLaunch {
		t.Fatalf("pure pick (%v) not cheaper than W=16 (%v)", pure, w16+d.KernelLaunch)
	}
}

func TestReuseIsNearFree(t *testing.T) {
	d := dev()
	lat := d.StageLatency(model.StageRecord{Stage: model.StageNeighbor, Algo: "reuse", Reused: true, N: 8192, Q: 8192, K: 8}, Config{Batch: 14})
	if lat > d.KernelLaunch {
		t.Fatalf("reuse costs %v, should be below one kernel launch", lat)
	}
}

func TestBatchScalesThroughputBoundWork(t *testing.T) {
	d := dev()
	rec := model.StageRecord{Stage: model.StageNeighbor, Algo: "knn-brute", N: 4096, Q: 1024, K: 8}
	b1 := d.StageLatency(rec, Config{Batch: 1})
	b8 := d.StageLatency(rec, Config{Batch: 8})
	if float64(b8) < 6*float64(b1-d.KernelLaunch) {
		t.Fatalf("batch 8 = %v vs batch 1 = %v: throughput-bound work must scale ~linearly", b8, b1)
	}
}

func TestTensorCoreThreshold(t *testing.T) {
	// §5.4.1: below the channel threshold tensor cores stay idle.
	d := dev()
	below := model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 32000, CIn: 12, COut: 64}
	above := model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 3200, CIn: 120, COut: 64}
	noTC := Config{Batch: 1}
	tc := Config{Batch: 1, TensorCores: true}
	if d.StageLatency(below, noTC) != d.StageLatency(below, tc) {
		t.Fatal("tensor cores engaged below the channel threshold")
	}
	if d.StageLatency(above, tc) >= d.StageLatency(above, noTC) {
		t.Fatal("tensor cores did not speed up the above-threshold conv")
	}
	if d.TensorCoreUtilization(12) != 0 {
		t.Fatal("utilization nonzero below threshold")
	}
	if u := d.TensorCoreUtilization(120); u <= 0 || u >= 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestSec541ReshapeShape(t *testing.T) {
	// The §5.4.1 ablation: same FLOPs, wider channels → faster with tensor
	// cores (40.4 ms → 18.3 ms on the paper's hardware; we check the
	// direction and that the factor is meaningful).
	d := dev()
	tc := Config{Batch: 1, TensorCores: true}
	orig := model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 32 * 1000 * 32, CIn: 12, COut: 64}
	reshaped := model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 32 * 100 * 32, CIn: 120, COut: 64}
	lo := d.StageLatency(orig, tc)
	lr := d.StageLatency(reshaped, tc)
	if lr >= lo {
		t.Fatalf("reshape did not help: %v → %v", lo, lr)
	}
	ratio := float64(lo) / float64(lr)
	if ratio < 1.5 || ratio > 20 {
		t.Fatalf("reshape speedup %.2f×, want within an order of the paper's 2.2×", ratio)
	}
}

func TestSortedGroupingReducesTraffic(t *testing.T) {
	d := dev()
	rec := model.StageRecord{Stage: model.StageGroup, Algo: "gather", Q: 2048, K: 8, CIn: 64}
	base := d.StageLatency(rec, Config{Batch: 1})
	sorted := d.StageLatency(rec, Config{Batch: 1, SortedGrouping: true})
	if sorted >= base {
		t.Fatal("sorted grouping did not reduce latency")
	}
}

func TestPriceTraceAggregation(t *testing.T) {
	d := dev()
	tr := &model.Trace{}
	tr.Add(model.StageRecord{Stage: model.StageStructurize, Algo: "morton", N: 8192})
	tr.Add(model.StageRecord{Stage: model.StageSample, Algo: "morton", N: 8192, Q: 2048})
	tr.Add(model.StageRecord{Stage: model.StageNeighbor, Algo: "morton-window", N: 8192, Q: 2048, K: 8, W: 16})
	tr.Add(model.StageRecord{Stage: model.StageGroup, Algo: "gather", Q: 2048, K: 8, CIn: 16})
	tr.Add(model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 2048 * 8, CIn: 16, COut: 32})
	rep := d.PriceTrace(tr, Config{Batch: 14, Reuse: true})
	if len(rep.Records) != 5 {
		t.Fatalf("records = %d", len(rep.Records))
	}
	var sum time.Duration
	for _, r := range rep.Records {
		if r.Latency <= 0 {
			t.Fatalf("non-positive latency for %v", r.Stage)
		}
		sum += r.Latency
	}
	if sum != rep.Total {
		t.Fatalf("total %v != sum %v", rep.Total, sum)
	}
	if rep.SampleNeighbor+rep.Feature != rep.Total {
		t.Fatal("two-way breakdown does not partition the total")
	}
	if rep.EnergyJ <= 0 {
		t.Fatal("energy not positive")
	}
	// Energy = Σ power×time, so avg power must sit between component bounds.
	if rep.AvgPowerW < d.BasePower || rep.AvgPowerW > d.BasePower+d.FeaturePowerTensor+d.MemPowerReuse+1 {
		t.Fatalf("avg power = %v W implausible", rep.AvgPowerW)
	}
	if rep.MemoryOverheadBytes != 8192*4 {
		t.Fatalf("memory overhead = %d, want %d", rep.MemoryOverheadBytes, 8192*4)
	}
}

func TestReusePowerDelta(t *testing.T) {
	// Reuse raises DRAM power (1.35 → 1.63 W) — energy under reuse must be
	// higher for the same trace.
	d := dev()
	tr := &model.Trace{}
	tr.Add(model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 1000, CIn: 32, COut: 32})
	base := d.PriceTrace(tr, Config{Batch: 1})
	reuse := d.PriceTrace(tr, Config{Batch: 1, Reuse: true})
	if reuse.EnergyJ <= base.EnergyJ {
		t.Fatal("reuse config did not raise memory power")
	}
	if reuse.Total != base.Total {
		t.Fatal("reuse config changed latency of a feature stage")
	}
}

func TestMortonPowerBelowSOTA(t *testing.T) {
	// §6.2: 4.5 W → 4.2 W when the approximations run.
	d := dev()
	sota := d.StagePower(model.StageRecord{Stage: model.StageSample, Algo: "fps"}, Config{})
	morton := d.StagePower(model.StageRecord{Stage: model.StageSample, Algo: "morton"}, Config{})
	if morton >= sota {
		t.Fatalf("morton power %v ≥ SOTA power %v", morton, sota)
	}
	if sota != 4.5 || morton != 4.2 {
		t.Fatalf("powers (%v, %v) drifted from the paper's measurements", sota, morton)
	}
}

func TestDeviceTierScaling(t *testing.T) {
	xavier := JetsonAGXXavier()
	orin := JetsonOrinNX()
	nano := JetsonNano()
	rec := model.StageRecord{Stage: model.StageNeighbor, Algo: "knn-brute", N: 4096, Q: 1024, K: 8}
	cfg := Config{Batch: 4}
	lx := xavier.StageLatency(rec, cfg)
	lo := orin.StageLatency(rec, cfg)
	ln := nano.StageLatency(rec, cfg)
	if !(lo < lx && lx < ln) {
		t.Fatalf("tier ordering broken: orin %v, xavier %v, nano %v", lo, lx, ln)
	}
	// Powers scale with the tier factor.
	if orin.IrregularPower <= xavier.IrregularPower || nano.IrregularPower >= xavier.IrregularPower {
		t.Fatal("power scaling broken")
	}
	if orin.Name == xavier.Name || nano.Name == xavier.Name {
		t.Fatal("tier names not set")
	}
}

func TestStageLatencyDefaultBranches(t *testing.T) {
	d := dev()
	cfg := Config{Batch: 1}
	// Unknown algorithms fall back to conservative defaults, not zero.
	for _, rec := range []model.StageRecord{
		{Stage: model.StageSample, Algo: "mystery", N: 1000, Q: 100},
		{Stage: model.StageNeighbor, Algo: "mystery", N: 1000, Q: 100, K: 4},
		{Stage: model.StageSample, Algo: "grid", N: 1000, Q: 100},
		{Stage: model.StageNeighbor, Algo: "knn-kdtree", N: 1000, Q: 100, K: 4},
		{Stage: model.StageInterp, Algo: "three-nn", N: 1000, Q: 100},
		{Stage: model.StageKind(99)},
	} {
		if lat := d.StageLatency(rec, cfg); lat < 0 {
			t.Fatalf("negative latency for %+v", rec)
		}
	}
	if p := d.StagePower(model.StageRecord{Stage: model.StageKind(99)}, cfg); p != d.BasePower {
		t.Fatalf("unknown stage power = %v", p)
	}
}

func TestReportFormat(t *testing.T) {
	d := dev()
	tr := &model.Trace{}
	tr.Add(model.StageRecord{Stage: model.StageSample, Algo: "fps", N: 1000, Q: 100})
	tr.Add(model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 100, CIn: 8, COut: 8})
	rep := d.PriceTrace(tr, Config{Batch: 1})
	s := rep.Format()
	for _, want := range []string{"total", "sample", "feature", "energy", "avg power"} {
		if !contains(s, want) {
			t.Fatalf("Format missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLayerStage(t *testing.T) {
	d := dev()
	tr := &model.Trace{}
	tr.Add(model.StageRecord{Stage: model.StageSample, Layer: 0, Algo: "fps", N: 1000, Q: 250})
	tr.Add(model.StageRecord{Stage: model.StageSample, Layer: 1, Algo: "fps", N: 250, Q: 64})
	rep := d.PriceTrace(tr, Config{Batch: 1})
	per := rep.LayerStage(model.StageSample)
	if len(per) != 2 || per[0] <= per[1] {
		t.Fatalf("per-layer sample latencies = %v (layer 0 must dominate)", per)
	}
}
