package edgesim

import (
	"math"
	"time"

	"repro/internal/model"
)

// Config describes the execution configuration a trace is priced under — the
// paper's Baseline / S+N / S+N+F axes plus batch size.
type Config struct {
	// Batch is the number of batch elements processed together. Stage
	// records describe one cloud; throughput-bound work scales linearly
	// with Batch while per-stage launch overhead is paid once — this is the
	// mechanism behind the paper's observation that larger batches benefit
	// more from the approximations (W1 vs W2 in §6.2).
	Batch int
	// TensorCores deploys the feature-compute stage to tensor cores (the
	// "+F" configurations), engaging only above the channel threshold.
	TensorCores bool
	// Reuse indicates the neighbor-index reuse buffer is live, raising DRAM
	// power (4.5→... 1.35 W → 1.63 W in the paper's measurement).
	Reuse bool
	// SortedGrouping applies the §5.4.2 sorted-index grouping optimization,
	// reducing grouping-stage DRAM traffic.
	SortedGrouping bool
}

func (c Config) batch() float64 {
	if c.Batch < 1 {
		return 1
	}
	return float64(c.Batch)
}

// sortedGroupingTrafficFactor is the §5.4.2 measurement: sorting each row of
// the neighbor-index matrix cuts L2 traffic 53.9% and DRAM traffic 25.7%; we
// charge the DRAM reduction against the memory-bound grouping stage.
const sortedGroupingTrafficFactor = 1 - 0.257

// StageLatency prices one stage record under a configuration.
func (d *Device) StageLatency(r model.StageRecord, cfg Config) time.Duration {
	b := cfg.batch()
	launch := d.KernelLaunch
	var sec float64
	switch r.Stage {
	case model.StageSample:
		switch r.Algo {
		case "fps":
			// Q serial picks; each pick reduces over the whole batch's N
			// points (one fused kernel per pick).
			perPick := d.SerialStep.Seconds() + b*float64(r.N)/d.DistThroughput
			return time.Duration(float64(r.Q) * perPick * float64(time.Second))
		case "morton":
			// The standalone Algorithm 1: encode (parallel) + radix sort +
			// stride pick; three launches.
			sec = b*float64(r.N)/d.MortonThroughput +
				b*float64(r.N)/d.SortThroughput +
				b*float64(r.Q)/d.GatherThroughput
			launch = 3 * d.KernelLaunch
		case "bucketfps":
			// Bucketed pruned FPS: each of the Q serial picks scans the
			// ≈√N bucket summaries and replays distances in a handful of
			// refreshed buckets (≈8·√N points per pick empirically — see
			// BENCH_fps.json for measured curves) instead of all N points.
			rootN := math.Sqrt(float64(r.N))
			perPick := d.SerialStep.Seconds() + 8*b*rootN/d.DistThroughput
			return time.Duration(float64(r.Q) * perPick * float64(time.Second))
		case "morton-pick", "random", "uniform", "stride":
			// Stride pick over an already-structurized level (the encode +
			// sort cost is the trace's StageStructurize record).
			sec = b * float64(r.Q) / d.GatherThroughput
		case "grid":
			sec = 2 * b * float64(r.N) / d.GatherThroughput
		default:
			sec = b * float64(r.N) / d.GatherThroughput
		}
	case model.StageNeighbor:
		if r.Reused {
			// The cached index array is handed to the next stage; only a
			// token bookkeeping cost.
			return d.KernelLaunch / 10
		}
		switch r.Algo {
		case "ball-query", "knn-brute":
			sec = b * float64(r.N) * float64(r.Q) / d.DistThroughput
		case "knn-feature":
			// Feature-space kNN is GEMM-able (‖a−b‖² = ‖a‖²+‖b‖²−2a·b, with
			// the cross term a matrix multiply — how the PyTorch DGCNN
			// computes it), so the distance matrix runs at GEMM rates; the
			// top-k selection stays an irregular pass over the N×Q matrix.
			c := float64(r.CIn)
			if c < 3 {
				c = 3
			}
			gemm := 2 * b * float64(r.N) * float64(r.Q) * c / d.GEMMFLOPS
			selection := b * float64(r.N) * float64(r.Q) / d.DistThroughput
			sec = gemm + selection
		case "knn-kdtree", "ball-kdtree":
			logN := math.Log2(float64(r.N) + 1)
			build := b * float64(r.N) * logN / d.TreeThroughput
			query := b * float64(r.Q) * logN * float64(r.K) / d.TreeThroughput
			sec = build + query
		case "morton-window":
			if r.W > r.K {
				sec = b * float64(r.Q) * float64(r.W) / d.DistThroughput
			} else {
				// Pure index pick: a gather, no distance math.
				sec = b * float64(r.Q) * float64(r.K) / d.GatherThroughput
			}
		default:
			sec = b * float64(r.N) * float64(r.Q) / d.DistThroughput
		}
	case model.StageGroup:
		bytes := b * float64(r.Q) * float64(r.K) * float64(r.CIn) * 4 * 2 // read + write
		if cfg.SortedGrouping {
			bytes *= sortedGroupingTrafficFactor
		}
		sec = bytes / d.MemBandwidth
	case model.StageFeature:
		flops := 2 * b * float64(r.Q) * float64(r.CIn) * float64(r.COut)
		rate := d.cudaRate(r.CIn)
		if cfg.TensorCores {
			if tr := d.tensorRate(r.CIn); tr > rate {
				rate = tr
			}
		}
		bytes := b * float64(r.Q) * float64(r.CIn+r.COut) * 4
		sec = flops/rate + bytes/d.MemBandwidth
	case model.StageInterp:
		switch r.Algo {
		case "morton-interp":
			// Constant candidate set per target point.
			cand := float64(r.K) + 1
			sec = b * float64(r.N) * cand / d.DistThroughput
		default: // three-nn: exhaustive search over the coarse set
			sec = b * float64(r.N) * float64(r.Q) / d.DistThroughput
		}
	case model.StageStructurize:
		sec = b*float64(r.N)/d.MortonThroughput + b*float64(r.N)/d.SortThroughput
		launch = 2 * d.KernelLaunch
	default:
		sec = 0
	}
	return launch + time.Duration(sec*float64(time.Second))
}

// StagePower returns the compute-component power draw while the given record
// executes.
func (d *Device) StagePower(r model.StageRecord, cfg Config) float64 {
	switch r.Stage {
	case model.StageSample, model.StageNeighbor, model.StageInterp:
		switch r.Algo {
		case "morton", "morton-pick", "morton-window", "morton-interp", "uniform", "stride", "reuse":
			return d.MortonPower
		default:
			return d.IrregularPower
		}
	case model.StageStructurize:
		return d.MortonPower
	case model.StageGroup:
		return d.GatherPower
	case model.StageFeature:
		if cfg.TensorCores && r.CIn >= d.TensorMinChannels {
			return d.FeaturePowerTensor
		}
		return d.FeaturePowerCUDA
	default:
		return d.BasePower
	}
}
