package edgesim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
)

// PricedRecord is a stage record with its modelled latency and energy.
type PricedRecord struct {
	model.StageRecord
	Latency time.Duration
	EnergyJ float64
}

// Report summarizes a priced trace.
type Report struct {
	Records []PricedRecord
	Total   time.Duration
	ByStage map[model.StageKind]time.Duration
	// SampleNeighbor groups the paper's "sample & neighbor search"
	// component (sample + neighbor + interp + structurize); Feature groups
	// feature compute + grouping, matching Fig. 3's two-way breakdown.
	SampleNeighbor time.Duration
	Feature        time.Duration
	EnergyJ        float64
	AvgPowerW      float64
	// MemoryOverheadBytes is the extra storage the configuration holds
	// (Morton codes, reuse buffers), from the trace's record shapes.
	MemoryOverheadBytes int
}

// PriceTrace runs the cost model over every record of a trace.
func (d *Device) PriceTrace(tr *model.Trace, cfg Config) Report {
	rep := Report{ByStage: make(map[model.StageKind]time.Duration)}
	memPower := d.MemPower
	if cfg.Reuse {
		memPower = d.MemPowerReuse
	}
	for _, r := range tr.Records {
		lat := d.StageLatency(r, cfg)
		power := d.StagePower(r, cfg) + memPower + d.BasePower
		pr := PricedRecord{StageRecord: r, Latency: lat, EnergyJ: lat.Seconds() * power}
		rep.Records = append(rep.Records, pr)
		rep.Total += lat
		rep.ByStage[r.Stage] += lat
		rep.EnergyJ += pr.EnergyJ
		switch r.Stage {
		case model.StageSample, model.StageNeighbor, model.StageInterp, model.StageStructurize:
			rep.SampleNeighbor += lat
		default:
			rep.Feature += lat
		}
		switch {
		case r.Stage == model.StageStructurize:
			rep.MemoryOverheadBytes += r.N * 4 // 32-bit Morton codes
		case r.Reused:
			rep.MemoryOverheadBytes += r.Q * r.K * 4 // cached index array
		}
	}
	if rep.Total > 0 {
		rep.AvgPowerW = rep.EnergyJ / rep.Total.Seconds()
	}
	return rep
}

// Format renders the report as a human-readable breakdown — total, the
// paper's two-way split, per-stage-kind latencies and the energy figures.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total %v  (sample+NS %v, feature %v)\n", r.Total, r.SampleNeighbor, r.Feature)
	kinds := make([]model.StageKind, 0, len(r.ByStage))
	for k := range r.ByStage {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(a, b int) bool { return kinds[a] < kinds[b] })
	for _, k := range kinds {
		share := 0.0
		if r.Total > 0 {
			share = r.ByStage[k].Seconds() / r.Total.Seconds()
		}
		fmt.Fprintf(&b, "  %-12s %10v  %5.1f%%\n", k, r.ByStage[k], 100*share)
	}
	fmt.Fprintf(&b, "energy %.3f J  avg power %.2f W  extra memory %d B\n",
		r.EnergyJ, r.AvgPowerW, r.MemoryOverheadBytes)
	return b.String()
}

// LayerStage sums latencies of one stage kind per layer — the shape of
// Fig. 9 (per-layer sampling latency) and Fig. 11 (per-module neighbor
// search).
func (r Report) LayerStage(stage model.StageKind) map[int]time.Duration {
	out := make(map[int]time.Duration)
	for _, rec := range r.Records {
		if rec.Stage == stage {
			out[rec.Layer] += rec.Latency
		}
	}
	return out
}
