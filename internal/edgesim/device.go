// Package edgesim models the edge device the paper evaluates on — an NVIDIA
// Jetson AGX Xavier (512-core Volta GPU, 64 tensor cores, 16 GB LPDDR4x) — as
// an analytical cost model over pipeline stage records.
//
// Why a model instead of hardware: this reproduction has no CUDA device. The
// paper's latency and energy results derive from (a) the operation counts of
// each stage, (b) how well each algorithm's structure maps onto a wide
// parallel machine (FPS serializes its n picks; Morton kernels are
// embarrassingly parallel; brute-force search is throughput-bound), and
// (c) measured component powers. The model charges exactly those quantities,
// so the *shapes* the paper reports — which algorithm wins, by roughly what
// factor, how the gap scales with batch size — are reproduced, while
// absolute milliseconds are simulator outputs, not wall-clock measurements.
//
// Calibration anchors (quoted in the paper):
//   - FPS of 1 024 from the 40 256-point Bunny ≈ 81.7 ms; uniform ≈ 1 ms (§4.2)
//   - Morton code generation for 8 192 points ≈ 0.1 ms (§5.1.2)
//   - baseline SMP+NS ≈ 33 ms/batch (ScanNet, B≈14) to 76 ms/batch (S3DIS, B=32);
//     EdgePC ≈ 9.7 and 14.6 ms/batch (§6.2)
//   - compute power 4.5 W → 4.2 W under the approximations; memory power
//     1.35 W → 1.63 W with index reuse (§6.2)
//   - tensor cores idle below a channel-dimension threshold (§5.4.1)
package edgesim

import "time"

// Device holds the cost-model parameters of an edge GPU.
type Device struct {
	Name string

	// KernelLaunch is the fixed overhead charged once per stage invocation
	// (kernel launch + driver).
	KernelLaunch time.Duration
	// SerialStep is the per-iteration overhead of serially dependent
	// algorithms (one FPS pick = one argmax reduction + update kernel).
	SerialStep time.Duration

	// DistThroughput is sustained 3-D point-distance evaluations per second
	// for irregular (divergent, gather-heavy) kernels.
	DistThroughput float64
	// MortonThroughput is Morton code generations per second (anchor:
	// 8 192 codes in 0.1 ms).
	MortonThroughput float64
	// SortThroughput is radix-sorted keys per second.
	SortThroughput float64
	// GatherThroughput is gathered/scattered elements per second for
	// index-pick kernels.
	GatherThroughput float64
	// TreeThroughput is kd-tree node visits per second (low parallelism —
	// the paper's footnote 1).
	TreeThroughput float64

	// CUDAFLOPS is the effective fp32 rate of pointwise (1×1-conv style)
	// feature kernels at saturation.
	CUDAFLOPS float64
	// GEMMFLOPS is the effective fp32 rate of large square GEMMs (e.g. the
	// N×N distance matrix of feature-space kNN), which utilize the SMs far
	// better than skinny pointwise convolutions.
	GEMMFLOPS float64
	// CUDAHalfChannels is the channel count at which CUDA GEMM reaches half
	// its effective rate (small channel dims underutilize the SMs).
	CUDAHalfChannels float64
	// TensorFLOPS is the effective rate once tensor cores engage.
	TensorFLOPS float64
	// TensorHalfChannels is the half-saturation channel count for tensor
	// cores.
	TensorHalfChannels float64
	// TensorMinChannels is the channel threshold below which tensor cores
	// stay idle (§5.4.1: a 12-channel conv ran with 0% TC utilization).
	TensorMinChannels int

	// MemBandwidth is effective DRAM bandwidth in bytes/second.
	MemBandwidth float64

	// Component powers in watts (from the paper's tegrastats measurements).
	BasePower          float64 // SoC idle + CPU housekeeping
	IrregularPower     float64 // CUDA cores running SOTA sample/search kernels (4.5 W)
	MortonPower        float64 // CUDA cores running the approximation kernels (4.2 W)
	FeaturePowerCUDA   float64 // feature compute on CUDA cores
	FeaturePowerTensor float64 // feature compute with tensor cores engaged
	GatherPower        float64 // memory-bound grouping stages
	MemPower           float64 // DRAM power, baseline (1.35 W)
	MemPowerReuse      float64 // DRAM power with the reuse buffer live (1.63 W)
}

// JetsonAGXXavier returns the device profile calibrated to the paper's
// quoted measurements (see the package comment for the anchor list).
func JetsonAGXXavier() *Device {
	return &Device{
		Name:         "NVIDIA Jetson AGX Xavier",
		KernelLaunch: 100 * time.Microsecond,
		SerialStep:   15 * time.Microsecond,

		DistThroughput:   10e9,
		MortonThroughput: 82e6,
		SortThroughput:   150e6,
		GatherThroughput: 20e9, // ~4-byte elements at full DRAM bandwidth
		TreeThroughput:   0.3e9,

		CUDAFLOPS:          150e9,
		GEMMFLOPS:          500e9,
		CUDAHalfChannels:   32,
		TensorFLOPS:        600e9,
		TensorHalfChannels: 128,
		TensorMinChannels:  16,

		MemBandwidth: 100e9,

		BasePower:          2.5,
		IrregularPower:     4.5,
		MortonPower:        4.2,
		FeaturePowerCUDA:   5.5,
		FeaturePowerTensor: 6.5,
		GatherPower:        3.5,
		MemPower:           1.35,
		MemPowerReuse:      1.63,
	}
}

// scaled returns a copy of the device with compute throughputs multiplied by
// compute, memory-side rates by mem, and powers by power. Fixed overheads
// (kernel launch, serial step) scale inversely with compute: a faster part
// also dispatches faster.
func (d *Device) scaled(name string, compute, mem, power float64) *Device {
	out := *d
	out.Name = name
	out.DistThroughput *= compute
	out.MortonThroughput *= compute
	out.SortThroughput *= compute
	out.TreeThroughput *= compute
	out.CUDAFLOPS *= compute
	out.GEMMFLOPS *= compute
	out.TensorFLOPS *= compute
	out.GatherThroughput *= mem
	out.MemBandwidth *= mem
	out.KernelLaunch = time.Duration(float64(out.KernelLaunch) / compute)
	out.SerialStep = time.Duration(float64(out.SerialStep) / compute)
	out.BasePower *= power
	out.IrregularPower *= power
	out.MortonPower *= power
	out.FeaturePowerCUDA *= power
	out.FeaturePowerTensor *= power
	out.GatherPower *= power
	out.MemPower *= power
	out.MemPowerReuse *= power
	return &out
}

// JetsonOrinNX returns a profile for the Xavier's successor tier: roughly
// 2.5× the compute and 1.5× the memory bandwidth at moderately higher power.
func JetsonOrinNX() *Device {
	return JetsonAGXXavier().scaled("NVIDIA Jetson Orin NX", 2.5, 1.5, 1.2)
}

// JetsonNano returns a profile for the entry tier: about a quarter of the
// Xavier's compute and 40% of its bandwidth at lower power — the devices
// where the paper's bottleneck bites hardest.
func JetsonNano() *Device {
	return JetsonAGXXavier().scaled("NVIDIA Jetson Nano", 0.25, 0.4, 0.5)
}

// cudaRate returns the effective CUDA GEMM rate at channel width c.
func (d *Device) cudaRate(c int) float64 {
	if c <= 0 {
		c = 1
	}
	u := float64(c) / (float64(c) + d.CUDAHalfChannels)
	return d.CUDAFLOPS * u
}

// tensorRate returns the effective tensor-core rate at channel width c, or 0
// when tensor cores do not engage.
func (d *Device) tensorRate(c int) float64 {
	if c < d.TensorMinChannels {
		return 0
	}
	u := float64(c) / (float64(c) + d.TensorHalfChannels)
	return d.TensorFLOPS * u
}

// TensorCoreUtilization reports the modelled utilization fraction at channel
// width c (0 when the cores do not engage), used by the §5.4.1 experiment.
func (d *Device) TensorCoreUtilization(c int) float64 {
	if c < d.TensorMinChannels {
		return 0
	}
	return float64(c) / (float64(c) + d.TensorHalfChannels)
}
