package tensor

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestBackendRegistry(t *testing.T) {
	names := BackendNames()
	want := []string{BackendBlocked, BackendInt8, BackendNaive}
	if len(names) != len(want) {
		t.Fatalf("registered backends %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registered backends %v, want %v", names, want)
		}
	}
	for _, n := range names {
		be, err := NewBackend(n)
		if err != nil {
			t.Fatalf("NewBackend(%q): %v", n, err)
		}
		if be.Name() != n {
			t.Fatalf("NewBackend(%q).Name() = %q", n, be.Name())
		}
	}
	// The empty name resolves to the default.
	be, err := NewBackend("")
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != DefaultBackend {
		t.Fatalf("NewBackend(\"\").Name() = %q, want %q", be.Name(), DefaultBackend)
	}
	// Unknown names fail with the registered list (the RegisterArch error
	// style the cmd flags surface to users).
	_, err = NewBackend("tensor-core")
	if err == nil {
		t.Fatal("unregistered backend name accepted")
	}
	for _, frag := range append([]string{"tensor-core", "registered:"}, want...) {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
}

func TestInt8InstancesAreIndependent(t *testing.T) {
	a, err := NewBackend(BackendInt8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(BackendInt8)
	if err != nil {
		t.Fatal(err)
	}
	if a.(*Int8Backend) == b.(*Int8Backend) {
		t.Fatal("NewBackend returned a shared int8 instance; replicas need private state")
	}
}

// randomMatrix fills a rows×cols matrix from rng with values in [-2, 2).
func randomMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.Float64()*4 - 2)
	}
	return m
}

// maxAbsDiff returns the largest element-wise |a−b|.
func maxAbsDiff(a, b *Matrix) float64 {
	var max float64
	for i, v := range a.Data {
		d := float64(v - b.Data[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// TestQuickBlockedMatMulMatchesNaive is the satellite property test: across
// random shapes — including ragged edges smaller than one 4×4 tile — the
// blocked MatMul family stays within 1e-5 of the reference kernels. (The
// tiled kernels preserve the per-cell accumulation order, so in practice the
// match is bit-exact; 1e-5 is the documented contract.)
func TestQuickBlockedMatMulMatchesNaive(t *testing.T) {
	be := Blocked()
	f := func(mSeed int64, m8, k8, n8 uint8) bool {
		rng := rand.New(rand.NewSource(mSeed))
		// 1..68: covers sub-tile shapes (1–3), exact tiles, and tile+ragged.
		m := int(m8%68) + 1
		k := int(k8%68) + 1
		n := int(n8%68) + 1
		a := randomMatrix(m, k, rng)
		b := randomMatrix(k, n, rng)
		ref := New(m, n)
		got := New(m, n)
		if err := MatMulInto(ref, a, b); err != nil {
			t.Fatal(err)
		}
		if err := be.MatMulInto(got, a, b); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ref, got); d > 1e-5 {
			t.Logf("MatMul %dx%d · %dx%d diff %g", m, k, k, n, d)
			return false
		}
		// a·bᵀ with b as n×k.
		bt := randomMatrix(n, k, rng)
		if err := MatMulBTInto(ref, a, bt); err != nil {
			t.Fatal(err)
		}
		if err := be.MatMulBTInto(got, a, bt); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ref, got); d > 1e-5 {
			t.Logf("MatMulBT %dx%d · (%dx%d)ᵀ diff %g", m, k, n, k, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInt8RoundTrip is the satellite property test: symmetric max-abs
// quantization reconstructs every element of a channel to within scale/2.
func TestQuickInt8RoundTrip(t *testing.T) {
	f := func(seed int64, n8 uint8, span float64) bool {
		n := int(n8) + 1
		rng := rand.New(rand.NewSource(seed))
		if span < 0 {
			span = -span
		}
		span = span/2 + 0.01 // keep magnitudes sane and nonzero
		src := make([]float32, n)
		for i := range src {
			src[i] = float32((rng.Float64()*2 - 1) * span)
		}
		q := make([]int8, n)
		scale := QuantizeInt8(q, src)
		back := make([]float32, n)
		DequantizeInt8(back, q, scale)
		bound := float64(scale) / 2
		for i := range src {
			d := float64(src[i] - back[i])
			if d < 0 {
				d = -d
			}
			// Allow one float32 ulp of slack on the exact half-scale bound.
			if d > bound*(1+1e-6) {
				t.Logf("n=%d scale=%g element %d: %g -> %g (err %g > %g)", n, scale, i, src[i], back[i], d, bound)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// The all-zero channel quantizes to scale 0 and reconstructs exactly.
	q := make([]int8, 4)
	if scale := QuantizeInt8(q, make([]float32, 4)); scale != 0 {
		t.Fatalf("all-zero channel scale %g, want 0", scale)
	}
}

// TestInt8MatMulWithinAnalyticBound checks the quantized matmul against the
// reference with the per-element error bound implied by the quantization
// scheme: each of the k partial products can be off by at most
// sA/2·|b| + sB/2·|a| + sA·sB/4.
func TestInt8MatMulWithinAnalyticBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][3]int{{1, 1, 1}, {5, 3, 4}, {17, 16, 9}, {64, 32, 48}, {33, 7, 5}} {
		m, k, n := shape[0], shape[1], shape[2]
		a := randomMatrix(m, k, rng)
		b := randomMatrix(k, n, rng)
		ref := New(m, n)
		got := New(m, n)
		if err := MatMulInto(ref, a, b); err != nil {
			t.Fatal(err)
		}
		be := NewInt8()
		if err := be.MatMulInto(got, a, b); err != nil {
			t.Fatal(err)
		}
		// Recover the scales the backend used.
		qRow := make([]int8, k)
		colScale := make([]float32, n)
		for j := 0; j < n; j++ {
			var maxAbs float32
			for r := 0; r < k; r++ {
				v := b.At(r, j)
				if v < 0 {
					v = -v
				}
				if v > maxAbs {
					maxAbs = v
				}
			}
			colScale[j] = maxAbs / 127
		}
		for i := 0; i < m; i++ {
			sA := float64(QuantizeInt8(qRow, a.Row(i)))
			for j := 0; j < n; j++ {
				sB := float64(colScale[j])
				var bound float64
				for kk := 0; kk < k; kk++ {
					av, bv := float64(a.At(i, kk)), float64(b.At(kk, j))
					if av < 0 {
						av = -av
					}
					if bv < 0 {
						bv = -bv
					}
					bound += sA/2*bv + sB/2*av + sA*sB/4
				}
				d := float64(got.At(i, j) - ref.At(i, j))
				if d < 0 {
					d = -d
				}
				if d > bound*(1+1e-5)+1e-7 {
					t.Fatalf("%dx%dx%d cell (%d,%d): |%g - %g| = %g exceeds bound %g",
						m, k, n, i, j, got.At(i, j), ref.At(i, j), d, bound)
				}
			}
		}
	}
}

// TestInt8WeightCacheReuse pins the calibration contract: the same weight
// matrix is quantized once per backend instance, repeated calls agree
// bit-exactly, and Invalidate forces a re-calibration after in-place edits.
func TestInt8WeightCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(6, 8, rng)
	w := randomMatrix(8, 5, rng)
	be := NewInt8()
	out1 := New(6, 5)
	out2 := New(6, 5)
	if err := be.MatMulInto(out1, a, w); err != nil {
		t.Fatal(err)
	}
	if len(be.weights) != 1 {
		t.Fatalf("cache holds %d entries after first call, want 1", len(be.weights))
	}
	if err := be.MatMulInto(out2, a, w); err != nil {
		t.Fatal(err)
	}
	if len(be.weights) != 1 {
		t.Fatalf("cache holds %d entries after second call, want 1", len(be.weights))
	}
	if !out1.Equal(out2) {
		t.Fatal("repeated quantized matmul not deterministic")
	}
	// Mutating the weights in place without Invalidate serves stale codes by
	// design; Invalidate re-calibrates.
	for i := range w.Data {
		w.Data[i] *= 2
	}
	be.Invalidate()
	if len(be.weights) != 0 {
		t.Fatalf("cache holds %d entries after Invalidate, want 0", len(be.weights))
	}
	if err := be.MatMulInto(out2, a, w); err != nil {
		t.Fatal(err)
	}
	// Doubling the weights doubles every (max-abs) scale, so the quantized
	// product doubles exactly.
	for i, v := range out2.Data {
		if want := out1.Data[i] * 2; v != want {
			t.Fatalf("element %d after re-calibration: %g, want %g", i, v, want)
		}
	}
}

// TestBackendValidationMatchesReference pins that every backend rejects the
// same shape and aliasing misuse the reference kernels do.
func TestBackendValidationMatchesReference(t *testing.T) {
	for _, name := range BackendNames() {
		be, err := NewBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		a := New(2, 3)
		b := New(3, 4)
		if err := be.MatMulInto(New(2, 5), a, b); err == nil {
			t.Fatalf("%s: bad destination shape accepted", name)
		}
		if err := be.MatMulInto(a, a, b); err == nil {
			t.Fatalf("%s: aliased destination accepted", name)
		}
		if err := be.MatMulBTInto(New(2, 5), a, New(4, 3)); err == nil {
			t.Fatalf("%s: bad BT destination shape accepted", name)
		}
		out := New(2, 4)
		if err := be.MatMulInto(out, a, b); err != nil {
			t.Fatalf("%s: valid matmul rejected: %v", name, err)
		}
	}
}

// TestBlockedBackendConcurrent exercises the shared blocked instance from
// several goroutines at once (each with private outputs) — the weight-sharing
// replica pattern — under the race detector in CI's backend-parity stage.
func TestBlockedBackendConcurrent(t *testing.T) {
	be := Blocked()
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(64, 32, rng)
	b := randomMatrix(32, 48, rng)
	ref := New(64, 48)
	if err := MatMulInto(ref, a, b); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([]*Matrix, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := New(64, 48)
			for it := 0; it < 10; it++ {
				if err := be.MatMulInto(out, a, b); err != nil {
					errs[g] = err
					return
				}
			}
			outs[g] = out
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		if d := maxAbsDiff(ref, outs[g]); d > 1e-5 {
			t.Fatalf("goroutine %d diverged by %g", g, d)
		}
	}
}

// --- Fig. 3 microbenchmarks across backends (scripts/bench_backend.sh) ---

// benchBackendMatMul times the shared-MLP shape of the feature-compute stage:
// many point rows through a square-ish weight panel.
func benchBackendMatMul(b *testing.B, name string) {
	be, err := NewBackend(name)
	if err != nil {
		b.Fatal(err)
	}
	x := benchMatrix(2048, 128, 1)
	w := benchMatrix(128, 128, 2)
	out := New(2048, 128)
	// Warm-up: populates the int8 weight cache and activation scratch so the
	// loop times the steady state.
	if err := be.MatMulInto(out, x, w); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := be.MatMulInto(out, x, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackendMatMulNaive(b *testing.B)   { benchBackendMatMul(b, BackendNaive) }
func BenchmarkBackendMatMulBlocked(b *testing.B) { benchBackendMatMul(b, BackendBlocked) }
func BenchmarkBackendMatMulInt8(b *testing.B)    { benchBackendMatMul(b, BackendInt8) }
