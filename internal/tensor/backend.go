package tensor

import (
	"fmt"
	"sort"
	"strings"
)

// Backend is a pluggable implementation of the destination-writing kernel set
// the inference hot path dispatches through (the *Into family plus the
// in-place row ops). Every implementation must honor the same contracts as
// the package-level reference functions: identical shape/alias validation,
// destinations fully overwritten, and no retained references to caller
// buffers after the call returns — workspace buffers are recycled between
// frames, so caching anything keyed on an *activation* matrix is a bug
// (weights, which a backend may cache, live for the process).
//
// Numerics: the naive backend is the reference. blocked must stay within
// 1e-5 of it element-wise (in practice it preserves the per-cell accumulation
// order and is bit-identical); int8 is quantized and only promises the
// documented logit tolerance plus the ≤2pp accuracy envelope. Training always
// runs the reference kernels — backends are an inference-only axis.
//
// Concurrency: a Backend instance follows the Graph contract — one instance
// per replica/goroutine. Stateless backends (naive, blocked) are safe to
// share; int8 keeps per-instance scratch and must not be shared across
// goroutines.
type Backend interface {
	Name() string
	MatMulInto(out, a, b *Matrix) error
	MatMulBTInto(out, a, b *Matrix) error
	MatMulATInto(out, a, b *Matrix) error
	GatherInto(out, src *Matrix, idx []int) error
	ScatterAdd(dst, src *Matrix, idx []int) error
	MaxPoolGroupsInto(out *Matrix, argmax []int32, grouped *Matrix, k int) error
	ConcatInto(out, a, b *Matrix) error
	AddBiasRows(m *Matrix, bias []float32) error
}

// Registered backend names.
const (
	BackendNaive   = "naive"
	BackendBlocked = "blocked"
	BackendInt8    = "int8"
)

// DefaultBackend is the backend an empty selection resolves to.
const DefaultBackend = BackendNaive

// BackendFactory constructs a fresh Backend instance. NewBackend calls the
// factory per request so every replica gets private state (the int8 backend
// keeps quantization scratch; sharing it across goroutines would race).
type BackendFactory func() Backend

var backendFactories = map[string]BackendFactory{}

// RegisterBackend installs a backend factory under name, replacing any
// previous registration. New kernel implementations plug into the whole stack
// (nn layers, the model executor, pipeline.Options, the serve ladder and the
// cmd -backend flags) by registering here.
func RegisterBackend(name string, f BackendFactory) {
	if f == nil {
		panic(fmt.Sprintf("tensor: RegisterBackend(%q) with nil factory", name))
	}
	backendFactories[name] = f
}

// NewBackend constructs a fresh instance of the named backend; the empty name
// selects DefaultBackend. Unknown names produce an error listing what is
// registered (mirroring pipeline.NewNet's unregistered-architecture error).
func NewBackend(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	f, ok := backendFactories[name]
	if !ok {
		return nil, fmt.Errorf("tensor: no backend registered for %q (registered: %s)", name, strings.Join(BackendNames(), ", "))
	}
	return f(), nil
}

// BackendNames returns the registered backend names, sorted.
func BackendNames() []string {
	names := make([]string, 0, len(backendFactories))
	for n := range backendFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterBackend(BackendNaive, func() Backend { return Naive() })
	RegisterBackend(BackendBlocked, func() Backend { return Blocked() })
	RegisterBackend(BackendInt8, func() Backend { return NewInt8() })
}

// naiveBackend adapts the package-level reference kernels to the Backend
// interface. It is stateless; Naive returns a shared instance, so dispatching
// through it adds no per-call allocation and the default inference path stays
// bit-identical to the pre-backend code (the golden fixtures pin this).
type naiveBackend struct{}

var naiveShared Backend = naiveBackend{}

// Naive returns the shared reference backend.
func Naive() Backend { return naiveShared }

func (naiveBackend) Name() string { return BackendNaive }

//edgepc:hotpath
func (naiveBackend) MatMulInto(out, a, b *Matrix) error { return MatMulInto(out, a, b) }

//edgepc:hotpath
func (naiveBackend) MatMulBTInto(out, a, b *Matrix) error { return MatMulBTInto(out, a, b) }

// MatMulATInto is the weight-gradient kernel: training-only, and its parallel
// reduction allocates per-worker partials, so it carries no hotpath contract.
func (naiveBackend) MatMulATInto(out, a, b *Matrix) error { return MatMulATInto(out, a, b) }

//edgepc:hotpath
func (naiveBackend) GatherInto(out, src *Matrix, idx []int) error { return GatherInto(out, src, idx) }

// ScatterAdd is the grouping adjoint: training-only, no hotpath contract.
func (naiveBackend) ScatterAdd(dst, src *Matrix, idx []int) error { return ScatterAdd(dst, src, idx) }

//edgepc:hotpath
func (naiveBackend) MaxPoolGroupsInto(out *Matrix, argmax []int32, grouped *Matrix, k int) error {
	return MaxPoolGroupsInto(out, argmax, grouped, k)
}

//edgepc:hotpath
func (naiveBackend) ConcatInto(out, a, b *Matrix) error { return ConcatInto(out, a, b) }

//edgepc:hotpath
func (naiveBackend) AddBiasRows(m *Matrix, bias []float32) error { return AddBiasRows(m, bias) }
