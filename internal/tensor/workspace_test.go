package tensor

import "testing"

func TestWorkspaceGetShape(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("Get(3,5) = %dx%d with %d values", m.Rows, m.Cols, len(m.Data))
	}
	if !ws.Owns(m) {
		t.Fatal("freshly Get matrix not owned")
	}
}

func TestWorkspaceReusesBuffer(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 4)
	backing := &a.Data[0]
	ws.Put(a)
	// A smaller request in the same power-of-two bucket reuses the array.
	b := ws.Get(3, 5)
	if &b.Data[0] != backing {
		t.Fatal("Put then Get in the same bucket did not reuse the buffer")
	}
	if b.Rows != 3 || b.Cols != 5 || len(b.Data) != 15 {
		t.Fatalf("recycled matrix is %dx%d with %d values", b.Rows, b.Cols, len(b.Data))
	}
	st := ws.Stats()
	if st.Gets != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 1 miss", st)
	}
}

func TestWorkspaceDoublePutPanics(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(2, 2)
	ws.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	ws.Put(m)
}

func TestWorkspaceForeignPutPanics(t *testing.T) {
	ws := NewWorkspace()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign Put did not panic")
		}
	}()
	ws.Put(New(2, 2))
}

func TestWorkspacePutAfterResetPanics(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(2, 2)
	ws.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("Put after Reset did not panic")
		}
	}()
	ws.Put(m)
}

func TestWorkspaceResetReclaimsAll(t *testing.T) {
	ws := NewWorkspace()
	for i := 0; i < 4; i++ {
		ws.Get(8, 8)
	}
	ws.Reset()
	st := ws.Stats()
	if st.Lent != 0 || st.Free != 4 {
		t.Fatalf("after Reset: %+v, want 0 lent / 4 free", st)
	}
	// A warm second frame of the same shapes allocates nothing.
	for i := 0; i < 4; i++ {
		ws.Get(8, 8)
	}
	if got := ws.Stats(); got.Misses != st.Misses {
		t.Fatalf("steady-state frame allocated: %+v", got)
	}
}

// TestWorkspaceAliasingAfterPut demonstrates why Put is one-shot: the next
// Get in the bucket hands the same backing array to a new owner.
func TestWorkspaceAliasingAfterPut(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(2, 2)
	ws.Put(a)
	b := ws.Get(2, 2)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("expected a and b to share a backing array after Put/Get")
	}
	if ws.Owns(a) != ws.Owns(b) {
		// a and b are the same *Matrix; Owns must agree with itself.
		t.Fatal("ownership disagreement for the recycled matrix")
	}
}
