package tensor

import (
	"math/rand"
	"testing"
)

func benchMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// The §5.4.1 conv shapes: narrow channels (the tensor-core-idle case) vs the
// reshaped wide-channel equivalent with identical FLOPs.
func BenchmarkSec541ConvShapeNarrow(b *testing.B) {
	x := benchMatrix(10000, 12, 1)
	w := benchMatrix(12, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec541ConvShapeWide(b *testing.B) {
	x := benchMatrix(1000, 120, 1)
	w := benchMatrix(120, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulSquare128(b *testing.B) {
	x := benchMatrix(128, 128, 3)
	y := benchMatrix(128, 128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(128 * 128 * 4)
}

func BenchmarkMaxPoolGroups(b *testing.B) {
	x := benchMatrix(2048*8, 32, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxPoolGroups(x, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulAT measures the weight-gradient matmul (aᵀ·b) with the
// k-dimension split across workers; BenchmarkMatMulATSerial pins the
// single-worker accumulation on the same shapes. On a ≥4-core machine the
// parallel variant should show a clear wall-clock speedup; on one core the
// two coincide (the kernel falls back to the serial path).
func BenchmarkMatMulAT(b *testing.B) {
	a := benchMatrix(8192, 32, 8)
	x := benchMatrix(8192, 32, 9)
	out := New(32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulATInto(out, a, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulATSerial(b *testing.B) {
	a := benchMatrix(8192, 32, 8)
	x := benchMatrix(8192, 32, 9)
	out := New(32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		matMulATAccum(out, a, x, 0, a.Rows)
	}
}

// BenchmarkMatMulInto vs BenchmarkMatMulSquare128 isolates the allocation
// cost of the non-Into kernel on the hot-path shape.
func BenchmarkMatMulInto128(b *testing.B) {
	x := benchMatrix(128, 128, 3)
	y := benchMatrix(128, 128, 4)
	out := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulInto(out, x, y); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(128 * 128 * 4)
}

func BenchmarkGather(b *testing.B) {
	src := benchMatrix(2048, 32, 6)
	rng := rand.New(rand.NewSource(7))
	idx := make([]int, 2048*8)
	for i := range idx {
		idx[i] = rng.Intn(2048)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Gather(src, idx); err != nil {
			b.Fatal(err)
		}
	}
}
