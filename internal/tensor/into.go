package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// This file holds the *Into variants of the allocating kernels: each writes
// into a caller-provided destination (typically a Workspace buffer) after
// shape-checking it, so a steady-state inference frame performs no heap
// allocation. The allocating functions in tensor.go are thin wrappers that
// allocate the destination and delegate here.
//
// Destinations must not alias any input; the kernels reject the
// cheap-to-detect case (shared backing array start), which is the only way a
// Workspace can hand out an alias.

// sameBacking reports whether two slices share the same backing array start —
// the aliasing pattern a Workspace Get/Put misuse produces.
func sameBacking(a, b []float32) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// checkDst validates the destination shape for op.
func checkDst(op string, out *Matrix, rows, cols int) error {
	if out.Rows != rows || out.Cols != cols {
		return fmt.Errorf("tensor: %s destination is %dx%d, need %dx%d", op, out.Rows, out.Cols, rows, cols)
	}
	return nil
}

// checkMatMul validates shapes and aliasing for out = a·b; shared by every
// backend's MatMul kernel so the validation contract cannot drift.
func checkMatMul(out, a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if err := checkDst("matmul", out, a.Rows, b.Cols); err != nil {
		return err
	}
	if sameBacking(out.Data, a.Data) || sameBacking(out.Data, b.Data) {
		return fmt.Errorf("tensor: matmul destination aliases an input")
	}
	return nil
}

// checkMatMulBT validates shapes and aliasing for out = a·bᵀ.
func checkMatMulBT(out, a, b *Matrix) error {
	if a.Cols != b.Cols {
		return fmt.Errorf("tensor: matmulBT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if err := checkDst("matmulBT", out, a.Rows, b.Rows); err != nil {
		return err
	}
	if sameBacking(out.Data, a.Data) || sameBacking(out.Data, b.Data) {
		return fmt.Errorf("tensor: matmulBT destination aliases an input")
	}
	return nil
}

// MatMulInto computes a·b into out (a.Rows × b.Cols), overwriting its
// contents. Same ikj loop order as MatMul, parallelized over blocks of a's
// rows, so results are bit-identical to the allocating version.
func MatMulInto(out, a, b *Matrix) error {
	if err := checkMatMul(out, a, b); err != nil {
		return err
	}
	parallel.ForChunks(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for j := range or {
				or[j] = 0
			}
			for k, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Row(k)
				for j, bv := range br {
					or[j] += av * bv
				}
			}
		}
	})
	return nil
}

// MatMulBTInto computes a·bᵀ into out (a: m×k, b: n×k → m×n), overwriting
// its contents.
func MatMulBTInto(out, a, b *Matrix) error {
	if err := checkMatMulBT(out, a, b); err != nil {
		return err
	}
	parallel.ForChunks(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				br := b.Row(j)
				var sum float32
				for k, av := range ar {
					sum += av * br[k]
				}
				or[j] = sum
			}
		}
	})
	return nil
}

// MatMulATInto computes aᵀ·b into out (a: k×m, b: k×n → m×n), overwriting
// its contents. The shared k dimension — the row count, which for weight
// gradients is the number of points and dwarfs m and n — is split across
// workers; each worker accumulates into a private m×n partial and the
// partials are reduced at the end, so no two goroutines ever write the same
// cell. (The float32 reduction order therefore differs from the serial path
// by at most the usual parallel-summation rounding.)
func MatMulATInto(out, a, b *Matrix) error {
	if a.Rows != b.Rows {
		return fmt.Errorf("tensor: matmulAT shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if err := checkDst("matmulAT", out, a.Cols, b.Cols); err != nil {
		return err
	}
	if sameBacking(out.Data, a.Data) || sameBacking(out.Data, b.Data) {
		return fmt.Errorf("tensor: matmulAT destination aliases an input")
	}
	workers := parallel.Workers(a.Rows)
	if workers <= 1 {
		out.Zero()
		matMulATAccum(out, a, b, 0, a.Rows)
		return nil
	}
	partials := make([]*Matrix, workers)
	parallel.ForWorkers(a.Rows, func(w, lo, hi int) {
		p := New(out.Rows, out.Cols)
		matMulATAccum(p, a, b, lo, hi)
		partials[w] = p
	})
	out.Zero()
	for _, p := range partials {
		if p == nil { // ceil division can leave trailing worker slots unused
			continue
		}
		for i, v := range p.Data {
			out.Data[i] += v
		}
	}
	return nil
}

// matMulATAccum adds aᵀ·b restricted to shared-dimension rows [lo, hi) into
// dst.
func matMulATAccum(dst, a, b *Matrix, lo, hi int) {
	for k := lo; k < hi; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst.Row(i)
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// GatherInto copies src row idx[j] into out row j for every j, overwriting
// out. Indexes are validated up front so the parallel copy never faults.
func GatherInto(out, src *Matrix, idx []int) error {
	if err := checkDst("gather", out, len(idx), src.Cols); err != nil {
		return err
	}
	if sameBacking(out.Data, src.Data) {
		return fmt.Errorf("tensor: gather destination aliases the source")
	}
	for _, i := range idx {
		if i < 0 || i >= src.Rows {
			return fmt.Errorf("tensor: gather index %d out of %d rows", i, src.Rows)
		}
	}
	parallel.ForChunks(len(idx), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			copy(out.Row(j), src.Row(idx[j]))
		}
	})
	return nil
}

// ConcatInto writes the column-wise concatenation [a | b] into out,
// overwriting it; a and b must have the same row count.
func ConcatInto(out, a, b *Matrix) error {
	if a.Rows != b.Rows {
		return fmt.Errorf("tensor: concat row mismatch %d vs %d", a.Rows, b.Rows)
	}
	if err := checkDst("concat", out, a.Rows, a.Cols+b.Cols); err != nil {
		return err
	}
	if sameBacking(out.Data, a.Data) || sameBacking(out.Data, b.Data) {
		return fmt.Errorf("tensor: concat destination aliases an input")
	}
	parallel.ForChunks(a.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			or := out.Row(r)
			copy(or[:a.Cols], a.Row(r))
			copy(or[a.Cols:], b.Row(r))
		}
	})
	return nil
}

// MaxPoolGroupsInto reduces the (n·k × C) grouped matrix into out (n × C) by
// per-channel maximum over each group of k consecutive rows, overwriting out.
// argmax, when non-nil (len n·C), records which grouped row supplied each
// maximum; pass nil on the inference path, where no backward pass will ever
// consume it.
func MaxPoolGroupsInto(out *Matrix, argmax []int32, grouped *Matrix, k int) error {
	if k <= 0 || grouped.Rows%k != 0 {
		return fmt.Errorf("tensor: cannot pool %d rows in groups of %d", grouped.Rows, k)
	}
	n := grouped.Rows / k
	if err := checkDst("maxpool", out, n, grouped.Cols); err != nil {
		return err
	}
	if sameBacking(out.Data, grouped.Data) {
		return fmt.Errorf("tensor: maxpool destination aliases the input")
	}
	if argmax != nil && len(argmax) != n*grouped.Cols {
		return fmt.Errorf("tensor: maxpool argmax length %d for %dx%d output", len(argmax), n, grouped.Cols)
	}
	parallel.ForChunks(n, func(lo, hi int) {
		for g := lo; g < hi; g++ {
			or := out.Row(g)
			copy(or, grouped.Row(g*k))
			if argmax == nil {
				for j := 1; j < k; j++ {
					row := grouped.Row(g*k + j)
					for c, v := range row {
						if v > or[c] {
							or[c] = v
						}
					}
				}
				continue
			}
			am := argmax[g*grouped.Cols : (g+1)*grouped.Cols]
			for c := range am {
				am[c] = int32(g * k)
			}
			for j := 1; j < k; j++ {
				row := grouped.Row(g*k + j)
				for c, v := range row {
					if v > or[c] {
						or[c] = v
						am[c] = int32(g*k + j)
					}
				}
			}
		}
	})
	return nil
}
