// Package tensor provides the minimal float32 linear algebra the point-cloud
// networks need: row-major matrices, blocked matrix multiplication, row
// gather/scatter (the grouping stage), and neighbor-axis max pooling.
//
// Convention: a matrix of shape (rows, cols) holds one *point* per row and
// one *channel* per column. Grouped neighbor features are stored as
// (n·k, C) matrices in query-major order, the same layout the paper's
// grouping stage materializes on the GPU.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (len rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, data []float32) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: %d values cannot form %d×%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a sub-slice (not a copy).
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Equal reports exact element-wise equality of shapes and values.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		//edgepc:lint-ignore floateq Equal is the bit-identity primitive the golden tests are built on
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// MatMul computes a·b into a newly allocated (a.Rows × b.Cols) matrix using
// an ikj loop order (streaming through b's rows) parallelized over blocks of
// a's rows.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	if err := MatMulInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MatMulBT computes a·bᵀ (a: m×k, b: n×k → m×n). Used in backprop.
func MatMulBT(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("tensor: matmulBT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Rows)
	if err := MatMulBTInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MatMulAT computes aᵀ·b (a: k×m, b: k×n → m×n). Used for weight gradients.
// The shared k dimension is split across workers (see MatMulATInto).
func MatMulAT(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("tensor: matmulAT shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Cols, b.Cols)
	if err := MatMulATInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// AddBiasRows adds bias (len = m.Cols) to every row of m in place.
func AddBiasRows(m *Matrix, bias []float32) error {
	if len(bias) != m.Cols {
		return fmt.Errorf("tensor: bias length %d for %d columns", len(bias), m.Cols)
	}
	parallel.ForChunks(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] += bias[j]
			}
		}
	})
	return nil
}

// Gather builds a (len(idx) × src.Cols) matrix whose row j is src row idx[j].
// This is the pipeline's grouping primitive. Row copies are parallelized
// (every row is independent); see GatherInto.
func Gather(src *Matrix, idx []int) (*Matrix, error) {
	out := New(len(idx), src.Cols)
	if err := GatherInto(out, src, idx); err != nil {
		return nil, err
	}
	return out, nil
}

// ScatterAdd adds each row j of src into dst row idx[j] (the adjoint of
// Gather, used to backprop through grouping).
func ScatterAdd(dst, src *Matrix, idx []int) error {
	if src.Rows != len(idx) || src.Cols != dst.Cols {
		return fmt.Errorf("tensor: scatter shape mismatch src %dx%d, dst %dx%d, %d indexes",
			src.Rows, src.Cols, dst.Rows, dst.Cols, len(idx))
	}
	for j, i := range idx {
		if i < 0 || i >= dst.Rows {
			return fmt.Errorf("tensor: scatter index %d out of %d rows", i, dst.Rows)
		}
		dr := dst.Row(i)
		for c, v := range src.Row(j) {
			dr[c] += v
		}
	}
	return nil
}

// MaxPoolGroups reduces a (n·k × C) grouped matrix to (n × C) by taking the
// per-channel maximum over each group of k consecutive rows. argmax records,
// for each output element, which grouped row supplied the max (for backprop).
func MaxPoolGroups(grouped *Matrix, k int) (out *Matrix, argmax []int32, err error) {
	if k <= 0 || grouped.Rows%k != 0 {
		return nil, nil, fmt.Errorf("tensor: cannot pool %d rows in groups of %d", grouped.Rows, k)
	}
	n := grouped.Rows / k
	out = New(n, grouped.Cols)
	argmax = make([]int32, n*grouped.Cols)
	if err := MaxPoolGroupsInto(out, argmax, grouped, k); err != nil {
		return nil, nil, err
	}
	return out, argmax, nil
}

// MaxPoolBackward routes grad (n × C) back to a (n·k × C) grouped gradient
// using the argmax produced by MaxPoolGroups.
func MaxPoolBackward(grad *Matrix, argmax []int32, k int) (*Matrix, error) {
	if len(argmax) != grad.Rows*grad.Cols {
		return nil, fmt.Errorf("tensor: argmax length %d for %dx%d grad", len(argmax), grad.Rows, grad.Cols)
	}
	out := New(grad.Rows*k, grad.Cols)
	for g := 0; g < grad.Rows; g++ {
		gr := grad.Row(g)
		am := argmax[g*grad.Cols : (g+1)*grad.Cols]
		for c, v := range gr {
			out.Data[int(am[c])*grad.Cols+c] += v
		}
	}
	return out, nil
}

// ColMax reduces the matrix to a single row of per-column maxima with argmax
// rows (global max pooling, the PointNet classifier readout).
func ColMax(m *Matrix) (vals []float32, argmax []int32) {
	vals = make([]float32, m.Cols)
	argmax = make([]int32, m.Cols)
	copy(vals, m.Row(0))
	for r := 1; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			if v > vals[c] {
				vals[c] = v
				argmax[c] = int32(r)
			}
		}
	}
	return vals, argmax
}

// LogSoftmaxRows applies a numerically stable log-softmax to every row in
// place.
func LogSoftmaxRows(m *Matrix) {
	parallel.ForChunks(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			maxV := row[0]
			for _, v := range row[1:] {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(float64(v - maxV))
			}
			logSum := float32(math.Log(sum)) + maxV
			for j := range row {
				row[j] -= logSum
			}
		}
	})
}

// Concat returns the column-wise concatenation [a | b]; both must have the
// same row count. Row copies are parallelized; see ConcatInto.
func Concat(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("tensor: concat row mismatch %d vs %d", a.Rows, b.Rows)
	}
	out := New(a.Rows, a.Cols+b.Cols)
	if err := ConcatInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// SplitCols splits m into left (cols [0,at)) and right (cols [at,Cols))
// copies.
func SplitCols(m *Matrix, at int) (left, right *Matrix, err error) {
	if at < 0 || at > m.Cols {
		return nil, nil, fmt.Errorf("tensor: split at %d of %d cols", at, m.Cols)
	}
	left = New(m.Rows, at)
	right = New(m.Rows, m.Cols-at)
	for r := 0; r < m.Rows; r++ {
		copy(left.Row(r), m.Row(r)[:at])
		copy(right.Row(r), m.Row(r)[at:])
	}
	return left, right, nil
}
