package tensor

import "repro/internal/parallel"

// blockedBackend is the cache-blocked fp32 backend: the MatMul family runs a
// register-tiled kernel (4 rows of a × 4 values of k per tile) that keeps the
// per-cell accumulation order identical to the naive ikj loop — k strictly
// ascending, one accumulator per output cell — so results match the reference
// backend bit-for-bit while touching each output row a quarter as often. Rows
// are distributed across workers with internal/parallel exactly like the
// naive kernels, so the parallel split never changes numerics either.
//
// Data-movement kernels (gather/concat/pool/bias) and the training-only ops
// have nothing to block over; they delegate to the reference implementations.
//
// Stateless and safe for concurrent use by weight-sharing replicas.
type blockedBackend struct{}

var blockedShared Backend = blockedBackend{}

// Blocked returns the shared cache-blocked backend.
func Blocked() Backend { return blockedShared }

func (blockedBackend) Name() string { return BackendBlocked }

// MatMulInto computes a·b into out with the tiled kernel. Validation matches
// the reference MatMulInto.
//
//edgepc:hotpath
func (blockedBackend) MatMulInto(out, a, b *Matrix) error {
	if err := checkMatMul(out, a, b); err != nil {
		return err
	}
	parallel.ForChunks(a.Rows, func(lo, hi int) {
		blockedMatMulRows(out, a, b, lo, hi)
	})
	return nil
}

// blockedMatMulRows runs the tiled a·b kernel over out rows [lo, hi).
//
//edgepc:hotpath
func blockedMatMulRows(out, a, b *Matrix, lo, hi int) {
	kc := a.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		ar0, ar1, ar2, ar3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		or0, or1, or2, or3 := out.Row(i), out.Row(i+1), out.Row(i+2), out.Row(i+3)
		for j := range or0 {
			or0[j] = 0
			or1[j] = 0
			or2[j] = 0
			or3[j] = 0
		}
		k := 0
		for ; k+4 <= kc; k += 4 {
			b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
			a00, a01, a02, a03 := ar0[k], ar0[k+1], ar0[k+2], ar0[k+3]
			a10, a11, a12, a13 := ar1[k], ar1[k+1], ar1[k+2], ar1[k+3]
			a20, a21, a22, a23 := ar2[k], ar2[k+1], ar2[k+2], ar2[k+3]
			a30, a31, a32, a33 := ar3[k], ar3[k+1], ar3[k+2], ar3[k+3]
			for j, v0 := range b0 {
				v1, v2, v3 := b1[j], b2[j], b3[j]
				// Left-to-right evaluation keeps each cell's partial sums in
				// ascending-k order — the bit-identity invariant.
				or0[j] = or0[j] + a00*v0 + a01*v1 + a02*v2 + a03*v3
				or1[j] = or1[j] + a10*v0 + a11*v1 + a12*v2 + a13*v3
				or2[j] = or2[j] + a20*v0 + a21*v1 + a22*v2 + a23*v3
				or3[j] = or3[j] + a30*v0 + a31*v1 + a32*v2 + a33*v3
			}
		}
		for ; k < kc; k++ {
			br := b.Row(k)
			a0, a1, a2, a3 := ar0[k], ar1[k], ar2[k], ar3[k]
			for j, bv := range br {
				or0[j] += a0 * bv
				or1[j] += a1 * bv
				or2[j] += a2 * bv
				or3[j] += a3 * bv
			}
		}
	}
	// Ragged row remainder: one row at a time, k still tiled by 4.
	for ; i < hi; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for j := range or {
			or[j] = 0
		}
		k := 0
		for ; k+4 <= kc; k += 4 {
			b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
			a0, a1, a2, a3 := ar[k], ar[k+1], ar[k+2], ar[k+3]
			for j, v0 := range b0 {
				or[j] = or[j] + a0*v0 + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < kc; k++ {
			av := ar[k]
			for j, bv := range b.Row(k) {
				or[j] += av * bv
			}
		}
	}
}

// MatMulBTInto computes a·bᵀ into out with a 4×4 output tile (16 register
// accumulators streaming the shared k dimension once per tile). One
// accumulator per cell, k ascending — bit-identical to the reference kernel.
//
//edgepc:hotpath
func (blockedBackend) MatMulBTInto(out, a, b *Matrix) error {
	if err := checkMatMulBT(out, a, b); err != nil {
		return err
	}
	n := b.Rows
	parallel.ForChunks(a.Rows, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			ar0, ar1, ar2, ar3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
			or0, or1, or2, or3 := out.Row(i), out.Row(i+1), out.Row(i+2), out.Row(i+3)
			j := 0
			for ; j+4 <= n; j += 4 {
				br0, br1, br2, br3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
				var s00, s01, s02, s03 float32
				var s10, s11, s12, s13 float32
				var s20, s21, s22, s23 float32
				var s30, s31, s32, s33 float32
				for k, a0 := range ar0 {
					a1, a2, a3 := ar1[k], ar2[k], ar3[k]
					v0, v1, v2, v3 := br0[k], br1[k], br2[k], br3[k]
					s00 += a0 * v0
					s01 += a0 * v1
					s02 += a0 * v2
					s03 += a0 * v3
					s10 += a1 * v0
					s11 += a1 * v1
					s12 += a1 * v2
					s13 += a1 * v3
					s20 += a2 * v0
					s21 += a2 * v1
					s22 += a2 * v2
					s23 += a2 * v3
					s30 += a3 * v0
					s31 += a3 * v1
					s32 += a3 * v2
					s33 += a3 * v3
				}
				or0[j], or0[j+1], or0[j+2], or0[j+3] = s00, s01, s02, s03
				or1[j], or1[j+1], or1[j+2], or1[j+3] = s10, s11, s12, s13
				or2[j], or2[j+1], or2[j+2], or2[j+3] = s20, s21, s22, s23
				or3[j], or3[j+1], or3[j+2], or3[j+3] = s30, s31, s32, s33
			}
			for ; j < n; j++ {
				br := b.Row(j)
				var s0, s1, s2, s3 float32
				for k, av := range ar0 {
					bv := br[k]
					s0 += av * bv
					s1 += ar1[k] * bv
					s2 += ar2[k] * bv
					s3 += ar3[k] * bv
				}
				or0[j], or1[j], or2[j], or3[j] = s0, s1, s2, s3
			}
		}
		for ; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for j := 0; j < n; j++ {
				br := b.Row(j)
				var sum float32
				for k, av := range ar {
					sum += av * br[k]
				}
				or[j] = sum
			}
		}
	})
	return nil
}

// The remaining kernels gain nothing from blocking; delegate to the
// reference implementations (which are already row-parallel where it pays).

func (blockedBackend) MatMulATInto(out, a, b *Matrix) error { return MatMulATInto(out, a, b) }

//edgepc:hotpath
func (blockedBackend) GatherInto(out, src *Matrix, idx []int) error {
	return GatherInto(out, src, idx)
}

func (blockedBackend) ScatterAdd(dst, src *Matrix, idx []int) error {
	return ScatterAdd(dst, src, idx)
}

//edgepc:hotpath
func (blockedBackend) MaxPoolGroupsInto(out *Matrix, argmax []int32, grouped *Matrix, k int) error {
	return MaxPoolGroupsInto(out, argmax, grouped, k)
}

//edgepc:hotpath
func (blockedBackend) ConcatInto(out, a, b *Matrix) error { return ConcatInto(out, a, b) }

//edgepc:hotpath
func (blockedBackend) AddBiasRows(m *Matrix, bias []float32) error { return AddBiasRows(m, bias) }
