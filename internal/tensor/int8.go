package tensor

import "repro/internal/parallel"

// Int8Backend is the quantized inference backend: MatMulInto runs in 8-bit
// integer arithmetic with symmetric max-abs scales — per *channel* (output
// column) for the right operand, calibrated once from the trained weight
// values and cached for the life of those weights, and per *row* for the left
// operand (activations), computed fresh every call because activations change
// every frame. Products are accumulated at integer precision and dequantized
// back to float32 at the kernel exit, which is a stage boundary in the model
// graph — everything downstream of the matmul (bias, batch-norm, pooling,
// concat) runs exact float32, so quantization error never compounds through
// the data-movement kernels.
//
// The integer accumulation is carried in float32: every partial product is an
// integer of magnitude ≤ 127·127, so sums stay exactly representable while
// the shared dimension is ≤ 1040 (2²⁴/127²) — far beyond the channel widths
// these networks use. Accumulation is therefore deterministic, independent of
// the parallel row split.
//
// The weight-scale cache is keyed by the weight matrix pointer. Caching
// *activations* this way would be a bug — workspace buffers are recycled
// between frames — but weight matrices live for the process, and
// nn.ShareParams/retraining swap in fresh *Matrix values, which miss the
// cache and re-calibrate naturally. Call Invalidate after mutating weight
// values in place (nn.LoadParams on an already-warm net).
//
// Concurrency: per-instance scratch — one Int8Backend per replica/goroutine
// (tensor.NewBackend returns a fresh instance per call for exactly this
// reason).
type Int8Backend struct {
	weights map[*Matrix]*int8Weights

	// Per-call activation scratch, grown cap-guarded and reused across
	// frames.
	qa     []int8
	scaleA []float32
}

type int8Weights struct {
	q     []int8    // row-major, same layout as the source matrix
	scale []float32 // per column: dequantization scale
}

// NewInt8 returns a fresh quantized backend with empty calibration state.
func NewInt8() *Int8Backend {
	return &Int8Backend{weights: make(map[*Matrix]*int8Weights)}
}

// Name implements Backend.
func (be *Int8Backend) Name() string { return BackendInt8 }

// Invalidate drops all cached weight quantizations; the next MatMulInto
// re-calibrates from the current weight values.
func (be *Int8Backend) Invalidate() {
	for k := range be.weights {
		delete(be.weights, k)
	}
}

// quantizeRow quantizes src with a symmetric max-abs scale, writing the int8
// codes to dst and returning the scale (0 for an all-zero row, whose codes
// are all 0).
func quantizeRow(dst []int8, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		for i := range dst[:len(src)] {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 127 / maxAbs
	for i, v := range src {
		dst[i] = roundInt8(v * inv)
	}
	return scale
}

// roundInt8 rounds half away from zero and clamps to the symmetric code
// range [-127, 127].
func roundInt8(v float32) int8 {
	if v >= 0 {
		v += 0.5
		if v > 127 {
			return 127
		}
		return int8(v)
	}
	v -= 0.5
	if v < -127 {
		return -127
	}
	return int8(v)
}

// QuantizeInt8 quantizes one channel symmetrically (max-abs scale, codes in
// [-127, 127]) and returns the scale; DequantizeInt8 inverts it. Round-trip
// error is bounded by scale/2 per element (the property test pins this).
// These are the calibration primitives the backend applies per weight column
// and per activation row.
func QuantizeInt8(dst []int8, src []float32) float32 {
	if len(dst) < len(src) {
		panic("tensor: QuantizeInt8 destination shorter than source")
	}
	return quantizeRow(dst, src)
}

// DequantizeInt8 reconstructs float32 values from int8 codes and their scale.
func DequantizeInt8(dst []float32, src []int8, scale float32) {
	if len(dst) < len(src) {
		panic("tensor: DequantizeInt8 destination shorter than source")
	}
	for i, q := range src {
		dst[i] = float32(q) * scale
	}
}

// weightsFor returns the cached per-channel quantization of b, calibrating on
// first sight. Calibration is once per weight matrix per process — not a
// steady-state cost.
func (be *Int8Backend) weightsFor(b *Matrix) *int8Weights {
	if w, ok := be.weights[b]; ok && len(w.q) == len(b.Data) {
		return w
	}
	w := &int8Weights{q: make([]int8, len(b.Data)), scale: make([]float32, b.Cols)}
	// Pass 1: per-column max-abs.
	for r := 0; r < b.Rows; r++ {
		for j, v := range b.Row(r) {
			if v < 0 {
				v = -v
			}
			if v > w.scale[j] {
				w.scale[j] = v
			}
		}
	}
	inv := make([]float32, b.Cols)
	for j, maxAbs := range w.scale {
		if maxAbs == 0 {
			continue
		}
		w.scale[j] = maxAbs / 127
		inv[j] = 127 / maxAbs
	}
	// Pass 2: quantize.
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		qrow := w.q[r*b.Cols : (r+1)*b.Cols]
		for j, v := range row {
			qrow[j] = roundInt8(v * inv[j])
		}
	}
	be.weights[b] = w
	return w
}

// MatMulInto computes a·b into out in int8 arithmetic (see the type comment
// for the quantization scheme). Validation matches the reference MatMulInto.
//
//edgepc:hotpath
func (be *Int8Backend) MatMulInto(out, a, b *Matrix) error {
	if err := checkMatMul(out, a, b); err != nil {
		return err
	}
	qb := be.weightsFor(b)
	kc := a.Cols
	if cap(be.qa) < a.Rows*kc {
		//edgepc:lint-ignore hotpathalloc cap-guarded grow; steady-state frames reuse the scratch
		be.qa = make([]int8, a.Rows*kc)
	}
	if cap(be.scaleA) < a.Rows {
		//edgepc:lint-ignore hotpathalloc cap-guarded grow; steady-state frames reuse the scratch
		be.scaleA = make([]float32, a.Rows)
	}
	qa := be.qa[:a.Rows*kc]
	scaleA := be.scaleA[:a.Rows]
	parallel.ForChunks(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			scaleA[i] = quantizeRow(qa[i*kc:(i+1)*kc], a.Row(i))
		}
	})
	parallel.ForChunks(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			for j := range or {
				or[j] = 0
			}
			qar := qa[i*kc : (i+1)*kc]
			for k, av := range qar {
				if av == 0 {
					continue
				}
				avf := float32(av)
				qbr := qb.q[k*out.Cols : (k+1)*out.Cols]
				for j, bv := range qbr {
					or[j] += avf * float32(bv)
				}
			}
			sa := scaleA[i]
			for j := range or {
				or[j] *= sa * qb.scale[j]
			}
		}
	})
	return nil
}

// The remaining kernels run exact float32: the backward-only matmuls because
// training never quantizes, and the data-movement/bias kernels because the
// dequantize-at-stage-boundary contract keeps everything between matmuls in
// float32.

func (be *Int8Backend) MatMulBTInto(out, a, b *Matrix) error { return MatMulBTInto(out, a, b) }
func (be *Int8Backend) MatMulATInto(out, a, b *Matrix) error { return MatMulATInto(out, a, b) }

//edgepc:hotpath
func (be *Int8Backend) GatherInto(out, src *Matrix, idx []int) error {
	return GatherInto(out, src, idx)
}

func (be *Int8Backend) ScatterAdd(dst, src *Matrix, idx []int) error {
	return ScatterAdd(dst, src, idx)
}

//edgepc:hotpath
func (be *Int8Backend) MaxPoolGroupsInto(out *Matrix, argmax []int32, grouped *Matrix, k int) error {
	return MaxPoolGroupsInto(out, argmax, grouped, k)
}

//edgepc:hotpath
func (be *Int8Backend) ConcatInto(out, a, b *Matrix) error { return ConcatInto(out, a, b) }

//edgepc:hotpath
func (be *Int8Backend) AddBiasRows(m *Matrix, bias []float32) error { return AddBiasRows(m, bias) }
