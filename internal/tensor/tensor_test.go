package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("matmul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("shape mismatch: want error")
	}
}

func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func matClose(a, b *Matrix, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m, k, n := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		want := naiveMatMul(a, b)
		got, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !matClose(got, want, 1e-4) {
			t.Fatal("MatMul disagrees with naive")
		}
		// a·bᵀ via MatMulBT equals MatMul(a, transpose(b)).
		bt := New(b.Cols, b.Rows)
		for i := 0; i < b.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		gotBT, err := MatMulBT(a, bt)
		if err != nil {
			t.Fatal(err)
		}
		if !matClose(gotBT, want, 1e-4) {
			t.Fatal("MatMulBT disagrees")
		}
		// aᵀ·b via MatMulAT.
		at := New(a.Cols, a.Rows)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		gotAT, err := MatMulAT(at, b)
		if err != nil {
			t.Fatal(err)
		}
		if !matClose(gotAT, want, 1e-4) {
			t.Fatal("MatMulAT disagrees")
		}
	}
}

func TestAddBiasRows(t *testing.T) {
	m, _ := FromSlice(2, 2, []float32{1, 2, 3, 4})
	if err := AddBiasRows(m, []float32{10, 20}); err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 13, 24}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("bias = %v", m.Data)
		}
	}
	if err := AddBiasRows(m, []float32{1}); err == nil {
		t.Fatal("bad bias length: want error")
	}
}

func TestGatherScatterAdjoint(t *testing.T) {
	// <Gather(x), y> == <x, ScatterAdd†(y)> — the defining adjoint property.
	rng := rand.New(rand.NewSource(5))
	src := randMatrix(rng, 6, 3)
	idx := []int{2, 2, 0, 5}
	g, err := Gather(src, idx)
	if err != nil {
		t.Fatal(err)
	}
	y := randMatrix(rng, 4, 3)
	lhs := 0.0
	for i := range g.Data {
		lhs += float64(g.Data[i] * y.Data[i])
	}
	back := New(6, 3)
	if err := ScatterAdd(back, y, idx); err != nil {
		t.Fatal(err)
	}
	rhs := 0.0
	for i := range src.Data {
		rhs += float64(src.Data[i] * back.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-4 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestGatherOutOfRange(t *testing.T) {
	src := New(3, 2)
	if _, err := Gather(src, []int{0, 3}); err == nil {
		t.Fatal("index 3 of 3 rows: want error")
	}
	if err := ScatterAdd(src, New(1, 2), []int{-1}); err == nil {
		t.Fatal("negative index: want error")
	}
}

func TestMaxPoolGroups(t *testing.T) {
	// 2 groups of k=2, 2 channels.
	m, _ := FromSlice(4, 2, []float32{
		1, 9,
		5, 2,
		-1, -3,
		-2, -1,
	})
	out, argmax, err := MaxPoolGroups(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 9, -1, -1}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("pool = %v, want %v", out.Data, want)
		}
	}
	wantArg := []int32{1, 0, 2, 3}
	for i := range wantArg {
		if argmax[i] != wantArg[i] {
			t.Fatalf("argmax = %v, want %v", argmax, wantArg)
		}
	}
	if _, _, err := MaxPoolGroups(m, 3); err == nil {
		t.Fatal("non-divisible groups: want error")
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	m, _ := FromSlice(4, 1, []float32{1, 5, 3, 2})
	out, argmax, err := MaxPoolGroups(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	grad, _ := FromSlice(2, 1, []float32{10, 20})
	back, err := MaxPoolBackward(grad, argmax, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 10, 20, 0}
	for i := range want {
		if back.Data[i] != want[i] {
			t.Fatalf("pool backward = %v, want %v", back.Data, want)
		}
	}
}

func TestColMax(t *testing.T) {
	m, _ := FromSlice(3, 2, []float32{1, 5, 7, 2, 3, 9})
	vals, argmax := ColMax(m)
	if vals[0] != 7 || vals[1] != 9 {
		t.Fatalf("vals = %v", vals)
	}
	if argmax[0] != 1 || argmax[1] != 2 {
		t.Fatalf("argmax = %v", argmax)
	}
}

func TestLogSoftmaxRows(t *testing.T) {
	m, _ := FromSlice(1, 3, []float32{1, 2, 3})
	LogSoftmaxRows(m)
	var sum float64
	for _, v := range m.Row(0) {
		sum += math.Exp(float64(v))
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sums to %v", sum)
	}
	// Numerical stability with large logits.
	big, _ := FromSlice(1, 2, []float32{1000, 999})
	LogSoftmaxRows(big)
	for _, v := range big.Row(0) {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("log-softmax overflowed")
		}
	}
}

func TestConcatSplitRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, c1, c2 := rng.Intn(5)+1, rng.Intn(4)+1, rng.Intn(4)+1
		a := randMatrix(rng, rows, c1)
		b := randMatrix(rng, rows, c2)
		cat, err := Concat(a, b)
		if err != nil {
			return false
		}
		l, r, err := SplitCols(cat, c1)
		if err != nil {
			return false
		}
		return l.Equal(a) && r.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatRowMismatch(t *testing.T) {
	if _, err := Concat(New(2, 1), New(3, 1)); err == nil {
		t.Fatal("row mismatch: want error")
	}
	if _, _, err := SplitCols(New(2, 3), 5); err == nil {
		t.Fatal("split beyond cols: want error")
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice(2, 2, []float32{1, 2, 3}); err == nil {
		t.Fatal("bad length: want error")
	}
	m, err := FromSlice(2, 2, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
}

func TestCloneAndZero(t *testing.T) {
	m, _ := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 9
	if m.Data[0] == 9 {
		t.Fatal("clone aliases")
	}
	m.Zero()
	if m.Data[0] != 0 || m.Data[1] != 0 {
		t.Fatal("zero failed")
	}
}
