package tensor

import (
	"fmt"
	"math/bits"
)

// Workspace is a size-bucketed free list of matrices for the inference hot
// path. Repeated-frame inference allocates the same activation shapes every
// frame; a Workspace lets frame N+1 reuse frame N's buffers so the
// steady-state forward pass performs no heap allocation and no GC work.
//
// Ownership rules (see DESIGN.md "Memory model and buffer reuse"):
//
//   - Get hands out a matrix with *unspecified contents*; every kernel that
//     writes into one must overwrite it fully (the *Into kernels do).
//   - Put may be called at most once per Get, by the code that knows the
//     buffer is dead; a second Put, a Put of a foreign matrix, or a Put
//     after Reset panics — all three are aliasing bugs in the making.
//   - Reset reclaims every outstanding buffer at once. It is called by the
//     frame driver at the start of each frame, so a workspace matrix has a
//     lifetime of at most one frame. Anything that must outlive the frame
//     (e.g. returned logits) must be cloned out first.
//
// A Workspace is not safe for concurrent use; each net owns one and calls
// Get/Put only from the single-goroutine top level of its forward pass (the
// kernels parallelize internally, below the workspace).
type Workspace struct {
	free   map[int][]*Matrix // recycled matrices, keyed by backing capacity
	lent   map[*Matrix]int   // outstanding matrices → their bucket
	gets   uint64
	misses uint64
}

// NewWorkspace creates an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		free: make(map[int][]*Matrix),
		lent: make(map[*Matrix]int),
	}
}

// bucketFor rounds a length up to the next power of two, the free-list
// granularity. Bucketing trades ≤2× slack per buffer for reuse across the
// slightly different shapes consecutive frames produce.
func bucketFor(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Get returns a rows×cols matrix backed by a recycled buffer when one of
// sufficient capacity is free, allocating otherwise. Contents are
// unspecified — the caller must fully overwrite them.
func (w *Workspace) Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: workspace Get %dx%d", rows, cols))
	}
	need := rows * cols
	b := bucketFor(need)
	w.gets++
	var m *Matrix
	if list := w.free[b]; len(list) > 0 {
		m = list[len(list)-1]
		list[len(list)-1] = nil
		w.free[b] = list[:len(list)-1]
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:need] // cap is the bucket size, ≥ need
	} else {
		w.misses++
		m = &Matrix{Rows: rows, Cols: cols, Data: make([]float32, need, b)}
	}
	w.lent[m] = b
	return m
}

// Put returns a matrix obtained from Get to the free list. The caller must
// not touch the matrix afterwards: its backing array will be handed out by a
// later Get. Putting a matrix the workspace does not currently lend (double
// Put, foreign matrix, or Put after Reset) panics — silently accepting any
// of those would alias two live tensors.
func (w *Workspace) Put(m *Matrix) {
	b, ok := w.lent[m]
	if !ok {
		panic("tensor: workspace Put of a matrix it does not lend (double Put, foreign matrix, or Put after Reset)")
	}
	delete(w.lent, m)
	w.free[b] = append(w.free[b], m)
}

// Owns reports whether m is currently lent out by this workspace. Callers
// with conditional ownership (a layer that may return its input unchanged)
// use it to guard Put.
func (w *Workspace) Owns(m *Matrix) bool {
	_, ok := w.lent[m]
	return ok
}

// Reset reclaims every outstanding matrix. All buffers handed out since the
// last Reset become invalid; the frame driver calls this at the start of
// each frame.
func (w *Workspace) Reset() {
	for m, b := range w.lent {
		delete(w.lent, m)
		w.free[b] = append(w.free[b], m)
	}
}

// WorkspaceStats is a snapshot of workspace traffic, used by the
// allocation-regression tests: a warm steady-state frame increments Gets but
// not Misses.
type WorkspaceStats struct {
	Gets   uint64 // total Get calls
	Misses uint64 // Gets that had to allocate
	Lent   int    // matrices currently outstanding
	Free   int    // matrices currently in free lists
}

// Stats returns a snapshot of workspace traffic.
func (w *Workspace) Stats() WorkspaceStats {
	free := 0
	for _, list := range w.free {
		free += len(list)
	}
	return WorkspaceStats{Gets: w.gets, Misses: w.misses, Lent: len(w.lent), Free: free}
}
