package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// garbageMatrix returns a rows×cols matrix prefilled with NaN and junk, the
// worst case for an Into kernel that forgets to overwrite a cell.
func garbageMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if i%3 == 0 {
			m.Data[i] = float32(math.NaN())
		} else {
			m.Data[i] = float32(rng.NormFloat64() * 1e6)
		}
	}
	return m
}

// minParallelWork mirrors parallel.minParallelWork (unexported there): the
// row count where the kernels switch from serial to goroutine execution.
const minParallelWork = 2048

// intoShapes exercises degenerate and parallel-threshold row counts: the
// parallel kernels switch implementation at minParallelWork rows, so shapes
// straddling it cover both code paths.
var intoShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 1, 7},
	{3, 5, 4},
	{minParallelWork - 1, 4, 3},
	{minParallelWork, 4, 3},
	{minParallelWork + 1, 4, 3},
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(11))
	for _, s := range intoShapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.k, s.n)
		want, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		out := garbageMatrix(rng, s.m, s.n)
		if err := MatMulInto(out, a, b); err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("%dx%d·%dx%d: MatMulInto differs from MatMul", s.m, s.k, s.k, s.n)
		}
	}
}

func TestMatMulBTIntoMatchesMatMulBT(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(12))
	for _, s := range intoShapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.n, s.k)
		want, err := MatMulBT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		out := garbageMatrix(rng, s.m, s.n)
		if err := MatMulBTInto(out, a, b); err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("%dx%d·(%dx%d)ᵀ: MatMulBTInto differs from MatMulBT", s.m, s.k, s.n, s.k)
		}
	}
}

func TestMatMulATIntoMatchesMatMulAT(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(13))
	// The k dimension (a.Rows) drives the parallel split here.
	for _, s := range intoShapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.m, s.n)
		want, err := MatMulAT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		out := garbageMatrix(rng, s.k, s.n)
		if err := MatMulATInto(out, a, b); err != nil {
			t.Fatal(err)
		}
		// MatMulAT delegates to MatMulATInto, so the two are bit-identical by
		// construction whatever the worker count.
		if !out.Equal(want) {
			t.Fatalf("(%dx%d)ᵀ·%dx%d: MatMulATInto differs from MatMulAT", s.m, s.k, s.m, s.n)
		}
	}
}

// TestMatMulATParallelMatchesSerial pins the parallel k-split against a
// single-worker run of the same kernel. The per-worker partials are reduced
// in a different order than the serial accumulation, so equality is up to
// parallel-summation rounding, not bit-exact.
func TestMatMulATParallelMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(14))
	k, m, n := 3*minParallelWork+17, 9, 6
	a := randMatrix(rng, k, m)
	b := randMatrix(rng, k, n)

	serial := New(m, n)
	matMulATAccum(serial, a, b, 0, k)

	par := New(m, n)
	if err := MatMulATInto(par, a, b); err != nil {
		t.Fatal(err)
	}
	if workers := runtime.GOMAXPROCS(0); workers < 2 {
		t.Fatalf("GOMAXPROCS(4) not in effect: %d", workers)
	}
	for i := range serial.Data {
		diff := math.Abs(float64(par.Data[i] - serial.Data[i]))
		scale := math.Abs(float64(serial.Data[i])) + 1
		if diff/scale > 5e-3 {
			t.Fatalf("cell %d: parallel %v vs serial %v", i, par.Data[i], serial.Data[i])
		}
	}
}

func TestGatherIntoMatchesGather(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(15))
	src := randMatrix(rng, 37, 5)
	for _, rows := range []int{1, 7, minParallelWork + 3} {
		idx := make([]int, rows)
		for i := range idx {
			idx[i] = rng.Intn(src.Rows)
		}
		want, err := Gather(src, idx)
		if err != nil {
			t.Fatal(err)
		}
		out := garbageMatrix(rng, rows, src.Cols)
		if err := GatherInto(out, src, idx); err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("rows=%d: GatherInto differs from Gather", rows)
		}
	}
}

func TestGatherIntoBadIndex(t *testing.T) {
	src := New(4, 2)
	out := New(2, 2)
	if err := GatherInto(out, src, []int{0, 4}); err == nil {
		t.Fatal("out-of-range index: want error")
	}
	if err := GatherInto(out, src, []int{-1, 0}); err == nil {
		t.Fatal("negative index: want error")
	}
}

func TestConcatIntoMatchesConcat(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(16))
	for _, rows := range []int{1, 5, minParallelWork + 1} {
		a := randMatrix(rng, rows, 3)
		b := randMatrix(rng, rows, 4)
		want, err := Concat(a, b)
		if err != nil {
			t.Fatal(err)
		}
		out := garbageMatrix(rng, rows, 7)
		if err := ConcatInto(out, a, b); err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("rows=%d: ConcatInto differs from Concat", rows)
		}
	}
}

func TestMaxPoolGroupsIntoMatchesMaxPoolGroups(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(17))
	for _, c := range []struct{ n, k, cols int }{
		{1, 1, 1}, {4, 3, 5}, {minParallelWork + 2, 4, 3},
	} {
		grouped := randMatrix(rng, c.n*c.k, c.cols)
		want, wantArg, err := MaxPoolGroups(grouped, c.k)
		if err != nil {
			t.Fatal(err)
		}
		out := garbageMatrix(rng, c.n, c.cols)
		argmax := make([]int32, c.n*c.cols)
		if err := MaxPoolGroupsInto(out, argmax, grouped, c.k); err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("n=%d k=%d: MaxPoolGroupsInto differs from MaxPoolGroups", c.n, c.k)
		}
		for i := range argmax {
			if argmax[i] != wantArg[i] {
				t.Fatalf("n=%d k=%d: argmax[%d] = %d, want %d", c.n, c.k, i, argmax[i], wantArg[i])
			}
		}
		// The nil-argmax inference variant must produce the same values.
		out2 := garbageMatrix(rng, c.n, c.cols)
		if err := MaxPoolGroupsInto(out2, nil, grouped, c.k); err != nil {
			t.Fatal(err)
		}
		if !out2.Equal(want) {
			t.Fatalf("n=%d k=%d: nil-argmax MaxPoolGroupsInto differs", c.n, c.k)
		}
	}
}

func TestIntoShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(3, 4)
	if err := MatMulInto(New(2, 5), a, b); err == nil {
		t.Fatal("wrong destination shape: want error")
	}
	if err := MatMulBTInto(New(2, 2), a, New(5, 3)); err == nil {
		t.Fatal("wrong destination shape: want error")
	}
	if err := MatMulATInto(New(3, 3), a, New(2, 4)); err == nil {
		t.Fatal("wrong destination shape: want error")
	}
	if err := GatherInto(New(2, 2), a, []int{0, 1}); err == nil {
		t.Fatal("wrong destination cols: want error")
	}
	if err := ConcatInto(New(2, 6), a, New(2, 4)); err == nil {
		t.Fatal("wrong destination cols: want error")
	}
	if err := MaxPoolGroupsInto(New(1, 3), nil, New(4, 3), 3); err == nil {
		t.Fatal("indivisible group count: want error")
	}
}

func TestIntoAliasErrors(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	if err := MatMulInto(a, a, b); err == nil {
		t.Fatal("destination aliasing a: want error")
	}
	if err := MatMulBTInto(b, a, b); err == nil {
		t.Fatal("destination aliasing b: want error")
	}
	if err := MatMulATInto(a, a, b); err == nil {
		t.Fatal("destination aliasing a: want error")
	}
	if err := GatherInto(a, a, []int{0, 1}); err == nil {
		t.Fatal("destination aliasing source: want error")
	}
	// A shape-valid aliased concat needs a destination sharing the input's
	// backing array start — exactly what a workspace misuse would produce.
	backing := make([]float32, 8)
	left, _ := FromSlice(2, 2, backing[:4])
	dst, _ := FromSlice(2, 4, backing)
	if err := ConcatInto(dst, left, New(2, 2)); err == nil {
		t.Fatal("destination aliasing input: want error")
	}
	g := New(2, 2)
	if err := MaxPoolGroupsInto(g, nil, g, 1); err == nil {
		t.Fatal("destination aliasing grouped: want error")
	}
}
