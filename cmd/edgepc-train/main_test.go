package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// Laptop-scale end-to-end run with -checkpoint: the command must leave a
// loadable crash-safe checkpoint whose parameters fit the exact network
// architecture it trained.
func TestRunTrainCheckpointSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.epck")
	if err := run("cls", 8, 32, 1, 4, 1, "", path); err != nil {
		t.Fatalf("train run: %v", err)
	}
	// Rebuild the same architecture the command trained and restore into it.
	ds := edgepc.NewClassificationDataset(8, 32, 1)
	w := edgepc.Workload{
		Arch: edgepc.ArchDGCNN, Task: edgepc.TaskClassification,
		Classes: ds.Classes(), K: 6, Batch: 32, Dataset: "ModelNet40", Points: 32,
	}
	net, err := edgepc.BuildNet(w, edgepc.SN, edgepc.Options{BaseWidth: 4, Seed: 1, Modules: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := edgepc.LoadCheckpoint(path, net); err != nil {
		t.Fatalf("restoring the command's checkpoint: %v", err)
	}
}

// A -checkpoint pointing into a missing directory must fail before any
// training time is spent, with an error naming the problem.
func TestRunTrainCheckpointBadDir(t *testing.T) {
	err := run("cls", 8, 32, 1, 4, 1, "", "/definitely/not/a/dir/ck.epck")
	if err == nil {
		t.Fatal("run accepted a checkpoint in a missing directory")
	}
	if !strings.Contains(err.Error(), "directory") {
		t.Fatalf("error %q does not explain the missing directory", err)
	}
}
