// Command edgepc-train reproduces the paper's retraining procedure (§5.3,
// Fig. 14): it trains a baseline network on a synthetic dataset, evaluates
// the EdgePC approximations with and without retraining, and prints the
// accuracy comparison.
//
// Usage:
//
//	edgepc-train [-task cls|partseg] [-items N] [-points N] [-epochs N] [-seed N]
//	edgepc-train -checkpoint ckpt.epck      # crash-safe per-epoch checkpoints
//
// -checkpoint writes a crash-safe checkpoint (versioned, checksummed,
// atomically renamed into place) after every retraining epoch and again
// after the final epoch, so a killed run always leaves a loadable file —
// either the previous epoch's or the new one, never a torn mix.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	task := flag.String("task", "cls", "task: cls (DGCNN classification) or partseg (PointNet++ part segmentation)")
	items := flag.Int("items", 80, "dataset size")
	points := flag.Int("points", 256, "points per cloud")
	epochs := flag.Int("epochs", 20, "training epochs")
	width := flag.Int("width", 12, "network base width")
	seed := flag.Int64("seed", 1, "seed")
	save := flag.String("save", "", "write the retrained EdgePC model's weights to this file")
	checkpoint := flag.String("checkpoint", "", "write a crash-safe checkpoint here after every retraining epoch")
	flag.Parse()

	if err := run(*task, *items, *points, *epochs, *width, *seed, *save, *checkpoint); err != nil {
		fmt.Fprintln(os.Stderr, "edgepc-train:", err)
		os.Exit(1)
	}
}

func run(task string, items, points, epochs, width int, seed int64, save, checkpoint string) error {
	if checkpoint != "" {
		// Fail a bad -checkpoint before any training time is spent: the
		// atomic write needs the directory to exist.
		dir := filepath.Dir(checkpoint)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return fmt.Errorf("-checkpoint %q: directory %q does not exist or is not a directory", checkpoint, dir)
		}
	}
	var ds edgepc.Dataset
	var w edgepc.Workload
	opts := edgepc.Options{BaseWidth: width, Seed: seed}
	switch task {
	case "cls":
		ds = edgepc.NewClassificationDataset(items, points, seed)
		w = edgepc.Workload{
			Arch: edgepc.ArchDGCNN, Task: edgepc.TaskClassification,
			Classes: ds.Classes(), K: 6, Batch: 32, Dataset: "ModelNet40",
		}
		opts.Modules = 3
	case "partseg":
		ds = edgepc.NewPartSegmentationDataset(items, points, seed)
		w = edgepc.Workload{
			Arch: edgepc.ArchPointNetPP, Task: edgepc.TaskSegmentation,
			Classes: ds.Classes(), K: 6, Batch: 32, Dataset: "ShapeNet",
		}
		opts.Depth = 3
	default:
		return fmt.Errorf("unknown -task %q", task)
	}
	w.Points = points
	trainIdx, testIdx := edgepc.SplitDataset(ds.Len(), 0.2)
	tc := edgepc.TrainConfig{
		Epochs: epochs, LR: 2e-3, BatchSize: 4, Seed: seed,
		Progress: func(epoch int, loss, acc float64) {
			fmt.Printf("  epoch %2d  train loss %.4f  test acc %.3f\n", epoch, loss, acc)
		},
	}

	fmt.Printf("=== baseline (%s, %d items, %d points) ===\n", task, items, points)
	baseNet, err := edgepc.BuildNet(w, edgepc.Baseline, opts)
	if err != nil {
		return err
	}
	start := time.Now()
	baseRes, err := edgepc.Train(baseNet, ds, trainIdx, testIdx, tc)
	if err != nil {
		return err
	}
	fmt.Printf("baseline accuracy %.3f (mIoU %.3f) in %v\n\n", baseRes.TestAcc, baseRes.TestIoU, time.Since(start).Round(time.Second))

	fmt.Println("=== EdgePC (S+N), warm-started from baseline, retrained with approximations in the loop ===")
	edgeNet, err := edgepc.BuildNet(w, edgepc.SN, opts)
	if err != nil {
		return err
	}
	if err := edgepc.CopyParams(edgeNet, baseNet); err != nil {
		return err
	}
	naiveAcc, _, err := edgepc.Evaluate(edgeNet, ds, testIdx)
	if err != nil {
		return err
	}
	fmt.Printf("before retraining (baseline weights + approximations): accuracy %.3f\n", naiveAcc)
	if checkpoint != "" {
		// Per-epoch crash-safe checkpoints: a kill at any instant leaves
		// either the previous epoch's file or the new one, never a torn mix.
		inner := tc.Progress
		tc.Progress = func(epoch int, loss, acc float64) {
			inner(epoch, loss, acc)
			if err := edgepc.SaveCheckpoint(checkpoint, edgeNet); err != nil {
				fmt.Fprintf(os.Stderr, "  checkpoint (epoch %d): %v\n", epoch, err)
			}
		}
	}
	edgeRes, err := edgepc.Train(edgeNet, ds, trainIdx, testIdx, tc)
	if err != nil {
		return err
	}
	if checkpoint != "" {
		if err := edgepc.SaveCheckpoint(checkpoint, edgeNet); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Printf("checkpoint written to %s\n", checkpoint)
	}
	fmt.Printf("EdgePC accuracy %.3f (mIoU %.3f)\n", edgeRes.TestAcc, edgeRes.TestIoU)
	fmt.Printf("accuracy drop vs baseline: %.1f%% (paper: within 2%% after retraining)\n",
		100*(baseRes.TestAcc-edgeRes.TestAcc))
	if save != "" {
		if err := edgepc.SaveNet(save, edgeNet); err != nil {
			return err
		}
		fmt.Printf("saved retrained weights to %s\n", save)
	}
	return nil
}
