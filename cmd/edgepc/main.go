// Command edgepc applies the EdgePC operations to point-cloud files or
// generated clouds: Morton structurization, down-sampling (FPS or Morton),
// and neighbor search (exact or index-window), reporting quality metrics and
// modelled edge-device cost.
//
// Usage:
//
//	edgepc structurize -in bunny.ply -out sorted.ply [-bits 32]
//	edgepc sample -in scene.off -n 1024 -method morton|fps|uniform [-out sub.off]
//	edgepc neighbors -in scene.off -k 8 -window 16 [-exact]
//	edgepc info -in scene.off
//
// When -in is omitted, a synthetic bunny (-gen bunny) or scene (-gen scene)
// is used, so every subcommand is runnable offline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "structurize":
		err = cmdStructurize(args)
	case "sample":
		err = cmdSample(args)
	case "neighbors":
		err = cmdNeighbors(args)
	case "info":
		err = cmdInfo(args)
	case "compress":
		err = cmdCompress(args)
	case "decompress":
		err = cmdDecompress(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "edgepc: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: edgepc <command> [flags]

commands:
  structurize   Morton-sort a cloud and report the structurization stats
  sample        down-sample a cloud (fps | morton | uniform | random)
  neighbors     search k neighbors (exact kNN or Morton index window)
  info          print cloud statistics
  compress      encode a cloud with the Morton delta codec (.epc)
  decompress    decode an .epc file back to .off/.ply

common flags: -in FILE (.off/.ply), -gen bunny|scene|sphere, -seed N
`)
}

type inputFlags struct {
	in   *string
	gen  *string
	n    *int
	seed *int64
}

func addInputFlags(fs *flag.FlagSet) inputFlags {
	return inputFlags{
		in:   fs.String("in", "", "input .off or .ply file"),
		gen:  fs.String("gen", "bunny", "generated input when -in is absent: bunny|scene|sphere"),
		n:    fs.Int("points", 10000, "point count for generated inputs"),
		seed: fs.Int64("seed", 1, "seed for generated inputs"),
	}
}

func (f inputFlags) load() (*edgepc.Cloud, error) {
	if *f.in != "" {
		return edgepc.LoadCloud(*f.in)
	}
	switch *f.gen {
	case "bunny":
		return edgepc.SyntheticBunny(*f.seed), nil
	case "scene":
		return edgepc.GenerateScene(edgepc.SceneOptions{N: *f.n, Seed: *f.seed}), nil
	case "sphere":
		return edgepc.GenerateShape(edgepc.ShapeSphere, edgepc.ShapeOptions{N: *f.n, Seed: *f.seed}), nil
	default:
		return nil, fmt.Errorf("unknown -gen %q", *f.gen)
	}
}

func cmdStructurize(args []string) error {
	fs := flag.NewFlagSet("structurize", flag.ExitOnError)
	in := addInputFlags(fs)
	out := fs.String("out", "", "write the Morton-sorted cloud to this .off/.ply file")
	bits := fs.Int("bits", 32, "Morton code width a")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cloud, err := in.load()
	if err != nil {
		return err
	}
	start := time.Now()
	s, err := edgepc.Structurize(cloud, edgepc.StructurizeOptions{TotalBits: *bits})
	if err != nil {
		return err
	}
	fmt.Printf("structurized %d points in %v\n", s.Len(), time.Since(start).Round(time.Microsecond))
	fmt.Printf("grid size r = %g, bits/axis = %d, code memory = %d bytes\n",
		s.Encoder.R, s.Encoder.BitsPerAxis, s.MemoryOverheadBytes())
	if *out != "" {
		if err := edgepc.SaveCloud(*out, s.Cloud); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	in := addInputFlags(fs)
	n := fs.Int("n", 1024, "number of points to sample")
	method := fs.String("method", "morton", "sampler: morton|fps|uniform|random")
	out := fs.String("out", "", "write the sampled cloud to this .off/.ply file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cloud, err := in.load()
	if err != nil {
		return err
	}
	start := time.Now()
	var sel []int
	switch *method {
	case "morton":
		sel, err = edgepc.SampleMorton(cloud, *n)
	case "fps":
		sel, err = edgepc.SampleFPS(cloud, *n)
	default:
		return fmt.Errorf("unknown -method %q (uniform/random are exposed via the library)", *method)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	mean, max, err := edgepc.CoverageRadius(cloud.Points, sel)
	if err != nil {
		return err
	}
	fmt.Printf("sampled %d/%d points with %s in %v\n", len(sel), cloud.Len(), *method, elapsed.Round(time.Microsecond))
	fmt.Printf("coverage radius: mean %.4f, max %.4f\n", mean, max)
	if *out != "" {
		if err := edgepc.SaveCloud(*out, cloud.Select(sel)); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdNeighbors(args []string) error {
	fs := flag.NewFlagSet("neighbors", flag.ExitOnError)
	in := addInputFlags(fs)
	k := fs.Int("k", 8, "neighbors per query")
	window := fs.Int("window", 0, "Morton window size W (0 = pure index pick)")
	exact := fs.Bool("exact", false, "also run exact kNN and report the false neighbor ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cloud, err := in.load()
	if err != nil {
		return err
	}
	s, err := edgepc.Structurize(cloud, edgepc.StructurizeOptions{})
	if err != nil {
		return err
	}
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	start := time.Now()
	approx, err := edgepc.WindowNeighbors(s, pos, *k, *window)
	if err != nil {
		return err
	}
	fmt.Printf("window search (W=%d) for %d queries in %v\n", *window, s.Len(), time.Since(start).Round(time.Microsecond))
	if *exact {
		start = time.Now()
		ref, err := edgepc.KNNNeighbors(s.Cloud.Points, s.Cloud.Points, *k)
		if err != nil {
			return err
		}
		exactDur := time.Since(start)
		fnr, err := edgepc.FalseNeighborRatio(approx, ref, *k)
		if err != nil {
			return err
		}
		fmt.Printf("exact kNN in %v; false neighbor ratio %.1f%%\n", exactDur.Round(time.Microsecond), 100*fnr)
	}
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := addInputFlags(fs)
	out := fs.String("out", "cloud.epc", "output file")
	bits := fs.Int("bits", 10, "quantization bits per axis")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cloud, err := in.load()
	if err != nil {
		return err
	}
	data, err := edgepc.CompressCloud(cloud, *bits)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	raw := cloud.Len() * 12
	fmt.Printf("compressed %d points: %d -> %d bytes (%.2fx), max error %.4g\n",
		cloud.Len(), raw, len(data), float64(raw)/float64(len(data)),
		edgepc.CompressionMaxError(cloud.Bounds(), *bits))
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "cloud.epc", "input .epc file")
	out := fs.String("out", "cloud.ply", "output .off/.ply file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	cloud, err := edgepc.DecompressCloud(data)
	if err != nil {
		return err
	}
	if err := edgepc.SaveCloud(*out, cloud); err != nil {
		return err
	}
	fmt.Printf("decoded %d points (Morton-ordered) to %s\n", cloud.Len(), *out)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := addInputFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cloud, err := in.load()
	if err != nil {
		return err
	}
	dropped := cloud.DropNonFinite()
	b := cloud.Bounds()
	fmt.Printf("points: %d (dropped %d non-finite)\n", cloud.Len(), dropped)
	fmt.Printf("bounds: min (%.3f %.3f %.3f) max (%.3f %.3f %.3f), max dim %.3f\n",
		b.Min.X, b.Min.Y, b.Min.Z, b.Max.X, b.Max.Y, b.Max.Z, b.MaxDim())
	if cloud.Labels != nil {
		counts := map[int32]int{}
		for _, l := range cloud.Labels {
			counts[l]++
		}
		fmt.Printf("labels: %d classes\n", len(counts))
	}
	return nil
}
