// Command edgepc-loadgen is the deterministic fleet traffic harness
// (internal/loadgen): an open-loop discrete-event simulation of the serving
// fleet's control plane — the real consistent-hash ring, token-bucket QoS
// and shed controller from internal/serve on a virtual clock — driven by
// Pareto heavy-tailed arrivals, a diurnal ramp and Zipf tenant skew. Same
// seed ⇒ bit-identical admit/shed/degrade counts, at million-arrival scale,
// in wall seconds.
//
// Usage:
//
//	edgepc-loadgen -quick                               # CI-scale smoke
//	edgepc-loadgen -out BENCH_serve.json                # full overload grid
//	edgepc-loadgen -calibrate -workload W1 -config S+N  # measured svc times
//	edgepc-loadgen -scenario 'seed=7;engines=8;qos-rate=50'
//
// Per scenario multiplier it prints one stable "scenario mult=..." count
// line (what CI diffs across two same-seed runs) plus a human summary, and
// the goodput-under-stall-storm sweep prints one "survivability ..." line
// per (multiplier, recovery policy); -out writes the full BENCH_serve.json
// report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/pipeline"
)

func main() {
	var (
		scenario  = flag.String("scenario", "", "spec overrides, 'key=value;key=value' (see internal/loadgen ParseSpec)")
		seed      = flag.Uint64("seed", 0, "PRNG seed override (0: keep spec seed)")
		quick     = flag.Bool("quick", false, "CI-scale preset: 2 engines, 400ms virtual window")
		mults     = flag.String("mults", "1,10,100", "overload multipliers for the scenario grid")
		crossover = flag.String("crossover", "1,2,5,10,20,50,100", "multipliers for the shed-vs-degrade crossover sweep")
		out       = flag.String("out", "", "write BENCH_serve.json report here ('-' for stdout)")

		calibrate = flag.Bool("calibrate", false, "measure per-tier service times from the real pipeline instead of the pinned defaults")
		workload  = flag.String("workload", "W1", "calibration: Table 1 workload id")
		config    = flag.String("config", "S+N", "calibration: execution config (baseline | S+N | S+N+F)")
		calFrames = flag.Int("cal-frames", 3, "calibration: frames measured per tier (min taken)")
	)
	flag.Parse()
	if err := run(*scenario, *seed, *quick, *mults, *crossover, *out,
		*calibrate, *workload, *config, *calFrames); err != nil {
		fmt.Fprintln(os.Stderr, "edgepc-loadgen:", err)
		os.Exit(1)
	}
}

func run(scenario string, seed uint64, quick bool, multsArg, crossArg, out string,
	calibrate bool, workload, config string, calFrames int) error {
	base := loadgen.Defaults()
	if quick {
		base = loadgen.Quick()
	}
	var cal *loadgen.Calibration
	if calibrate {
		c, svc, err := calibrateSvc(workload, config, quick, calFrames, len(base.SvcTiers))
		if err != nil {
			return err
		}
		cal, base.SvcTiers = c, svc
	}
	spec, err := loadgen.ParseSpec(scenario, base)
	if err != nil {
		return err
	}
	if seed != 0 {
		spec.Seed = seed
	}
	mults, err := loadgen.ParseMults(multsArg)
	if err != nil {
		return err
	}
	cross, err := loadgen.ParseMults(crossArg)
	if err != nil {
		return err
	}

	rep, err := loadgen.BuildReport(spec, mults, cross, cal)
	if err != nil {
		return err
	}

	fmt.Printf("edgepc-loadgen: %d engines x %d workers, %d tenants (zipf %.2f), %.0f fps at 1x, seed %d, %v virtual\n",
		spec.Engines, spec.Workers, spec.Tenants, spec.ZipfS, spec.EffectiveRate(), spec.Seed, spec.Duration)
	if cal != nil {
		fmt.Printf("calibrated %s %s: svc/tier %v\n", cal.Workload, cal.Config, cal.SvcNsTier)
	}
	for _, sc := range rep.Scenarios {
		fmt.Println(loadgen.CountLine(sc))
		fmt.Printf("  p50 %.3fms p99 %.3fms goodput %.0f fps (%.1f%% of offered) full-fidelity %.1f%% fairness %.3f\n",
			sc.P50Ms, sc.P99Ms, sc.GoodputFPS,
			pct(sc.Completed, sc.Offered), sc.FullFidelityFrac*100, sc.FairnessJain)
		for _, cl := range sc.Classes {
			fmt.Printf("  class %-6s offered %-8d completed %-8d shed %-8d p99 %.3fms\n",
				cl.Priority, cl.Offered, cl.Completed, cl.Shed, cl.P99Ms)
		}
	}
	fmt.Println("crossover (shed vs degrade):")
	for _, p := range rep.Crossover {
		fmt.Printf("  mult %6.1f: shed %5.1f%% degraded %5.1f%% goodput %8.0f fps p99 %8.3fms level %d\n",
			p.Mult, p.ShedFrac*100, p.DegradedFrac*100, p.GoodputFPS, p.P99Ms, p.ShedLevelMax)
	}
	fmt.Println("survivability (goodput under a stall storm, per recovery policy):")
	for _, p := range rep.Survivability {
		fmt.Println(loadgen.SurvLine(p))
		fmt.Printf("  mult %6.1f %-12s goodput %8.0f fps (%.1f%% of offered) p99 %8.3fms\n",
			p.Mult, p.Policy, p.GoodputFPS, p.GoodFrac*100, p.P99Ms)
	}

	if out == "" {
		return nil
	}
	if out == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// calibrateSvc measures the per-tier service time by running frames through
// the real pipeline at each degradation rung: tier 0 is the base config,
// tiers 1+ the DegradeTiers presets. The minimum over cal-frames forwards
// is taken (least-noise estimate). The measured times then become spec
// *inputs*, so the simulation itself stays bit-reproducible.
func calibrateSvc(workload, config string, quick bool, frames, tiers int) (*loadgen.Calibration, []time.Duration, error) {
	w, err := pipeline.WorkloadByID(workload)
	if err != nil {
		return nil, nil, err
	}
	kind, err := parseConfig(config)
	if err != nil {
		return nil, nil, err
	}
	if frames < 1 {
		return nil, nil, fmt.Errorf("cal-frames must be >= 1")
	}
	if tiers < 1 {
		tiers = 1
	}
	opts := pipeline.Options{Seed: 1}
	if quick {
		w.Points, w.Batch = 256, 1
		opts.BaseWidth, opts.Depth, opts.Modules = 8, 2, 2
	}
	nLadder := tiers - 1
	if nLadder > pipeline.MaxDegradeTiers {
		nLadder = pipeline.MaxDegradeTiers
	}
	tierOpts := pipeline.DegradeTiers(w, opts, nLadder)
	rows, err := pipeline.TieredReplicas(w, kind, opts, 1, tierOpts)
	if err != nil {
		return nil, nil, err
	}
	frame, err := pipeline.Frame(w, 1)
	if err != nil {
		return nil, nil, err
	}
	cal := &loadgen.Calibration{Workload: w.ID, Config: kind.String(), Frames: frames}
	svc := make([]time.Duration, len(rows))
	for ti, row := range rows {
		net := row[0]
		if _, err := net.Forward(frame, nil, false); err != nil { // warm caches
			return nil, nil, fmt.Errorf("calibrate tier %d: %w", ti, err)
		}
		best := time.Duration(1<<63 - 1)
		for f := 0; f < frames; f++ {
			start := time.Now()
			if _, err := net.Forward(frame, nil, false); err != nil {
				return nil, nil, fmt.Errorf("calibrate tier %d: %w", ti, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if best < time.Microsecond {
			best = time.Microsecond
		}
		svc[ti] = best
		cal.SvcNsTier = append(cal.SvcNsTier, best.Nanoseconds())
	}
	for _, d := range svc {
		cal.Speedup = append(cal.Speedup, float64(svc[0])/float64(d))
	}
	return cal, svc, nil
}

func parseConfig(s string) (pipeline.ConfigKind, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return pipeline.Baseline, nil
	case "s+n", "sn":
		return pipeline.SN, nil
	case "s+n+f", "snf":
		return pipeline.SNF, nil
	}
	return 0, fmt.Errorf("unknown config %q (want baseline, S+N or S+N+F)", s)
}
