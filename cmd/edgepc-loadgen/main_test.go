package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed. The harness prints its count lines to stdout; the smoke tests
// assert on those instead of re-running the simulation.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	return out, runErr
}

func TestRunQuickSmoke(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", 0, true, "1,10", "1,5", "", false, "W1", "S+N", 3)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := strings.Count(out, "scenario mult="); n != 2 {
		t.Fatalf("got %d scenario count lines, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, "crossover (shed vs degrade):") {
		t.Fatalf("no crossover table:\n%s", out)
	}
}

func TestRunWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	_, err := capture(t, func() error {
		return run("seed=9;duration=200ms", 0, true, "1", "1,2", path, false, "W1", "S+N", 3)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Bench     string            `json:"bench"`
		Spec      map[string]any    `json:"spec"`
		Scenarios []json.RawMessage `json:"scenarios"`
		Crossover []json.RawMessage `json:"crossover"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Bench != "serve_fleet" {
		t.Fatalf("bench = %q", rep.Bench)
	}
	if len(rep.Scenarios) != 1 || len(rep.Crossover) != 2 {
		t.Fatalf("sections: %d scenarios, %d crossover", len(rep.Scenarios), len(rep.Crossover))
	}
	if rep.Spec["seed"] != float64(9) {
		t.Fatalf("spec seed = %v, want the -scenario override", rep.Spec["seed"])
	}
}

func TestRunSeedFlagOverridesSpec(t *testing.T) {
	o1, err := capture(t, func() error { return run("seed=3", 0, true, "1", "1", "", false, "W1", "S+N", 3) })
	if err != nil {
		t.Fatal(err)
	}
	o2, err := capture(t, func() error { return run("seed=3", 41, true, "1", "1", "", false, "W1", "S+N", 3) })
	if err != nil {
		t.Fatal(err)
	}
	if line(o1, "scenario mult=") == line(o2, "scenario mult=") {
		t.Fatal("-seed override did not change the count line")
	}
}

func line(out, prefix string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	return ""
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"bad scenario key", func() error { return run("bogus=1", 0, true, "1", "1", "", false, "W1", "S+N", 3) }},
		{"bad scenario value", func() error { return run("rate=NaN", 0, true, "1", "1", "", false, "W1", "S+N", 3) }},
		{"bad mults", func() error { return run("", 0, true, "1,zero", "1", "", false, "W1", "S+N", 3) }},
		{"bad crossover", func() error { return run("", 0, true, "1", "-2", "", false, "W1", "S+N", 3) }},
		{"bad workload", func() error { return run("", 0, true, "1", "1", "", true, "W99", "S+N", 3) }},
		{"bad config", func() error { return run("", 0, true, "1", "1", "", true, "W1", "turbo", 3) }},
		{"bad cal-frames", func() error { return run("", 0, true, "1", "1", "", true, "W1", "S+N", 0) }},
		{"unwritable out", func() error {
			return run("", 0, true, "1", "1", filepath.Join(string(os.PathSeparator), "no-such-dir", "x.json"), false, "W1", "S+N", 3)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := capture(t, tc.fn); err == nil {
				t.Fatal("run accepted bad input")
			}
		})
	}
}

func TestCalibratedQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real (if tiny) model")
	}
	out, err := capture(t, func() error {
		return run("duration=100ms", 0, true, "1", "1", "", true, "W1", "S+N", 2)
	})
	if err != nil {
		t.Fatalf("calibrated run: %v", err)
	}
	if !strings.Contains(out, "calibrated W1 S+N: svc/tier") {
		t.Fatalf("no calibration line:\n%s", out)
	}
}
