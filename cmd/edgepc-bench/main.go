// Command edgepc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	edgepc-bench [-quick] [-seed N] [-backend NAME] [experiment ...]
//	edgepc-bench -list
//	edgepc-bench -list-backends
//
// With no experiment arguments it runs the full suite in order. Each
// experiment prints its table plus a note comparing the measured shape with
// the numbers the paper reports; EXPERIMENTS.md records a reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/tensor"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size workloads (seconds instead of minutes)")
	seed := flag.Int64("seed", 1, "seed for all synthetic data")
	backend := flag.String("backend", "", "tensor compute backend for model inference: naive | blocked | int8 (default naive)")
	list := flag.Bool("list", false, "list available experiments and exit")
	listBackends := flag.Bool("list-backends", false, "list available compute backends and exit")
	stages := flag.Bool("stages", false, "print the per-stage span breakdown (shorthand for the 'stages' experiment)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: edgepc-bench [-quick] [-seed N] [experiment ...]\n\n")
		fmt.Fprintf(os.Stderr, "Regenerates the EdgePC paper's tables and figures.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	if *listBackends {
		for _, name := range tensor.BackendNames() {
			fmt.Println(name)
		}
		return
	}
	// Fail a typo'd -backend before any experiment runs; the name itself is
	// resolved per network inside pipeline.Build.
	if _, err := tensor.NewBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var todo []experiments.Experiment
	if *stages {
		e, err := experiments.ByID("stages")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = append(todo, e)
	}
	if len(todo) > 0 {
		// -stages pins the run; positional experiments still append.
		for _, id := range flag.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				fmt.Fprintln(os.Stderr, "use -list to see available experiments")
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	} else if flag.NArg() == 0 {
		todo = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				fmt.Fprintln(os.Stderr, "use -list to see available experiments")
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	cfg := experiments.RunConfig{Quick: *quick, Seed: *seed, Backend: *backend}
	type jsonResult struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Table  string `json:"table"`
		Notes  string `json:"notes"`
		Millis int64  `json:"elapsed_ms"`
		Error  string `json:"error,omitempty"`
	}
	var collected []jsonResult
	failed := 0
	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(cfg)
		elapsed := time.Since(start)
		if err != nil {
			failed++
			if *jsonOut {
				collected = append(collected, jsonResult{ID: e.ID, Title: e.Title, Millis: elapsed.Milliseconds(), Error: err.Error()})
			} else {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			}
			continue
		}
		if *jsonOut {
			collected = append(collected, jsonResult{
				ID: res.ID, Title: res.Title, Table: res.Table, Notes: res.Notes,
				Millis: elapsed.Milliseconds(),
			})
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", res.Title, res.Table)
		if res.Notes != "" {
			fmt.Printf("note: %s\n", res.Notes)
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
