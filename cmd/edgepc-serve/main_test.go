package main

import (
	"testing"
	"time"
)

// The fleet path (-engines > 1) wires FleetReplicas, the router, QoS and the
// degradation ladder together; this smoke test runs the whole command
// in-process at laptop scale.
func TestRunFleetSmoke(t *testing.T) {
	err := run("W1", "S+N", "", 1, 0, 1, 100*time.Microsecond, 0,
		24, 4, 1, true, 2, 0, 0, 1,
		2, 3, 500, 0)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
}

func TestRunFleetValidation(t *testing.T) {
	cases := []struct {
		name             string
		engines, tenants int
		qosRate          float64
	}{
		{"too many engines", 65, 4, 0},
		{"zero tenants", 2, 0, 0},
		{"negative qos", 2, 4, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run("W1", "S+N", "", 1, 0, 1, 100*time.Microsecond, 0,
				1, 1, 1, true, 0, 0, 0, 1,
				tc.engines, tc.tenants, tc.qosRate, 0)
			if err == nil {
				t.Fatal("run accepted bad fleet flags")
			}
		})
	}
}
