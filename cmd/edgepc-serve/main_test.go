package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// The fleet path (-engines > 1) wires FleetReplicas, the router, QoS and the
// degradation ladder together; this smoke test runs the whole command
// in-process at laptop scale.
func TestRunFleetSmoke(t *testing.T) {
	err := run("W1", "S+N", "", 1, 0, 1, 100*time.Microsecond, 0,
		24, 4, 1, true, 2, 0, 0, 0, 1,
		0, 0, 0, "",
		2, 3, 500, 0)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
}

// The survivability path: stall chaos injected into every engine with the
// watchdog armed, retries and hedging live on the router. The command must
// complete with the router's conservation law intact (run checks it).
func TestRunSurvivabilitySmoke(t *testing.T) {
	err := run("W1", "S+N", "", 1, 0, 1, 100*time.Microsecond, 0,
		24, 4, 1, true, 0, 0, 0, 0.1, 1,
		250*time.Millisecond, 2, 5*time.Millisecond, "",
		3, 3, 0, 0)
	if err != nil {
		t.Fatalf("survivability run: %v", err)
	}
}

// quickNet builds the exact single-replica network run(-quick W1 S+N seed 1)
// serves, for producing architecturally matching checkpoints.
func quickNet(t *testing.T) pipeline.Net {
	t.Helper()
	w, err := pipeline.WorkloadByID("W1")
	if err != nil {
		t.Fatal(err)
	}
	w.Points, w.Batch = 256, 1
	opts := pipeline.Options{Seed: 1, BaseWidth: 8, Depth: 2, Modules: 2}
	net, err := pipeline.Build(w, pipeline.SN, opts)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// -checkpoint restores weights into the shared replica parameters before
// serving; a matching checkpoint must be accepted end to end.
func TestRunCheckpointRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.epck")
	if err := pipeline.SaveCheckpoint(path, quickNet(t)); err != nil {
		t.Fatal(err)
	}
	err := run("W1", "S+N", "", 1, 0, 1, 100*time.Microsecond, 0,
		4, 1, 1, true, 0, 0, 0, 0, 1,
		0, 0, 0, path,
		1, 4, 0, 0)
	if err != nil {
		t.Fatalf("checkpoint run: %v", err)
	}
}

func TestRunFleetValidation(t *testing.T) {
	cases := []struct {
		name             string
		engines, tenants int
		qosRate          float64
	}{
		{"too many engines", 65, 4, 0},
		{"zero tenants", 2, 0, 0},
		{"negative qos", 2, 4, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run("W1", "S+N", "", 1, 0, 1, 100*time.Microsecond, 0,
				1, 1, 1, true, 0, 0, 0, 0, 1,
				0, 0, 0, "",
				tc.engines, tc.tenants, tc.qosRate, 0)
			if err == nil {
				t.Fatal("run accepted bad fleet flags")
			}
		})
	}
}

// Bad survivability flags must fail fast with errors that name the flag and
// the fix, before any replicas are built.
func TestRunSurvivabilityValidation(t *testing.T) {
	cases := []struct {
		name         string
		stallTimeout time.Duration
		retries      int
		hedge        time.Duration
		checkpoint   string
		engines      int
		wantSubstr   string
	}{
		{"negative stall-timeout", -time.Millisecond, 0, 0, "", 1, "stall-timeout"},
		{"negative retries", 0, -1, 0, "", 2, "retries"},
		{"negative hedge", 0, 0, -time.Millisecond, "", 2, "hedge"},
		{"retries without fleet", 0, 2, 0, "", 1, "-engines"},
		{"hedge without fleet", 0, 0, time.Millisecond, "", 1, "-engines"},
		{"missing checkpoint", 0, 0, 0, "/definitely/not/a/file.epck", 1, "checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run("W1", "S+N", "", 1, 0, 1, 100*time.Microsecond, 0,
				1, 1, 1, true, 0, 0, 0, 0, 1,
				tc.stallTimeout, tc.retries, tc.hedge, tc.checkpoint,
				tc.engines, 4, 0, 0)
			if err == nil {
				t.Fatal("run accepted a bad survivability flag")
			}
			if !strings.Contains(err.Error(), tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSubstr)
			}
		})
	}
}
