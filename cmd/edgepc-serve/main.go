// Command edgepc-serve runs the concurrent batched inference engine
// (internal/serve) against a Table 1 workload: it builds a pool of
// weight-sharing model replicas, drives synthetic frames through the bounded
// queue from concurrent clients, and reports the serving metrics — latency
// quantiles, mean micro-batch size, throughput, and the backpressure /
// deadline counters.
//
// Usage:
//
//	edgepc-serve -workload W1 -config S+N -workers 2 -frames 64 -clients 4
//	edgepc-serve -quick -workload W3 -frames 8          # laptop-scale smoke
//	edgepc-serve -quick -degrade 2 -chaos-panic 0.1     # ladder + chaos drill
//	edgepc-serve -quick -engines 4 -tenants 8 -qos-rate 50   # fleet router
//	edgepc-serve -quick -backend int8                   # quantized inference kernels
//	edgepc-serve -quick -chaos-stall 0.1 -stall-timeout 2ms  # watchdog drill
//	edgepc-serve -quick -engines 3 -retries 2 -hedge 5ms     # survivable fleet
//	edgepc-serve -quick -checkpoint ckpt.epck           # restore weights first
//
// -quick shrinks the model and cloud far below the paper's scale so the
// command completes in seconds on a development machine. -degrade N arms an
// N-rung degradation ladder (pipeline.DegradeTiers) that steps approximation
// presets down under queue pressure instead of rejecting; -chaos-* thread a
// deterministic fault-injection plan (internal/faultinject) through the
// engine to demonstrate panic isolation and admission rejection live.
// -engines N (N > 1) switches to fleet mode: requests carry tenant/stream
// identities and route through the consistent-hash fleet router
// (serve.Router) with optional per-tenant QoS token buckets (-qos-rate,
// -qos-burst), priority load shedding, spillover, and quarantine.
//
// Survivability knobs (DESIGN.md §15): -stall-timeout arms the per-worker
// stall watchdog (wedged frames fail with ErrStalled and the slot is
// respawned); -chaos-stall injects deterministic worker stalls to drill it;
// -retries and -hedge (fleet mode) arm deadline-budgeted retries and
// tail-latency hedging on the router; -checkpoint restores weights from a
// crash-safe checkpoint (edgepc-train -checkpoint) into the shared
// parameters before serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/edgesim"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	var (
		workload = flag.String("workload", "W1", "Table 1 workload id (W1..W6)")
		config   = flag.String("config", "S+N", "execution config: baseline | S+N | S+N+F")
		workers  = flag.Int("workers", 2, "worker pool size (one model replica each)")
		queue    = flag.Int("queue", 0, "submission queue depth (0: 4x workers)")
		batch    = flag.Int("batch", 8, "max frames per micro-batch (1 disables batching)")
		window   = flag.Duration("window", 500*time.Microsecond, "micro-batch straggler wait")
		timeout  = flag.Duration("timeout", 0, "per-frame deadline (0: none)")
		frames   = flag.Int("frames", 32, "total frames to serve")
		clients  = flag.Int("clients", 4, "concurrent submitting clients")
		seed     = flag.Int64("seed", 1, "model and frame seed")
		quick    = flag.Bool("quick", false, "laptop-scale model and clouds (smoke mode)")
		backend  = flag.String("backend", "", "compute backend for the inference kernels: naive | blocked | int8 (default naive)")

		degrade      = flag.Int("degrade", 0, fmt.Sprintf("degradation-ladder depth 0..%d (0: off)", pipeline.MaxDegradeTiers))
		chaosPanic   = flag.Float64("chaos-panic", 0, "fault injection: fraction of frames that panic a worker")
		chaosCorrupt = flag.Float64("chaos-corrupt", 0, "fault injection: fraction of frames corrupted before admission")
		chaosStall   = flag.Float64("chaos-stall", 0, "fault injection: fraction of frames that wedge their worker")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "fault-injection plan seed")

		stallTimeout = flag.Duration("stall-timeout", 0, "stall watchdog: fail a worker wedged past this on one frame (0: off)")
		retries      = flag.Int("retries", 0, "fleet mode: deadline-budgeted retry attempts for transient failures (0: off)")
		hedge        = flag.Duration("hedge", 0, "fleet mode: duplicate in-flight requests slower than this on the next engine (0: off)")
		checkpoint   = flag.String("checkpoint", "", "restore weights from this crash-safe checkpoint before serving")

		engines  = flag.Int("engines", 1, "fleet size; >1 routes via the consistent-hash fleet router")
		tenants  = flag.Int("tenants", 4, "fleet mode: distinct tenant ids the clients cycle through")
		qosRate  = flag.Float64("qos-rate", 0, "fleet mode: per-tenant token-bucket rate, frames/s (0: unlimited)")
		qosBurst = flag.Float64("qos-burst", 0, "fleet mode: per-tenant burst capacity (0: max(rate,1))")
	)
	flag.Parse()
	if err := run(*workload, *config, *backend, *workers, *queue, *batch, *window, *timeout,
		*frames, *clients, *seed, *quick, *degrade, *chaosPanic, *chaosCorrupt, *chaosStall, *chaosSeed,
		*stallTimeout, *retries, *hedge, *checkpoint,
		*engines, *tenants, *qosRate, *qosBurst); err != nil {
		fmt.Fprintln(os.Stderr, "edgepc-serve:", err)
		os.Exit(1)
	}
}

func parseConfig(s string) (pipeline.ConfigKind, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return pipeline.Baseline, nil
	case "s+n", "sn":
		return pipeline.SN, nil
	case "s+n+f", "snf":
		return pipeline.SNF, nil
	}
	return 0, fmt.Errorf("unknown config %q (want baseline, S+N or S+N+F)", s)
}

// tierName labels a DegradeTiers rung by the knob it adds.
func tierName(i int) string {
	switch i {
	case 0:
		return "W/2"
	case 1:
		return "W/2+int8"
	case 2:
		return "W/2+int8+bucketfps@0.5"
	case 3:
		return "W/2+int8+bucketfps@0.5+budget/2"
	default:
		return fmt.Sprintf("W/2+int8+bucketfps@0.5+budget/2+reuse+%d", i-3)
	}
}

func run(workload, config, backend string, workers, queue, batch int, window, timeout time.Duration,
	frames, clients int, seed int64, quick bool, degrade int, chaosPanic, chaosCorrupt, chaosStall float64, chaosSeed uint64,
	stallTimeout time.Duration, retries int, hedge time.Duration, checkpoint string,
	engines, tenants int, qosRate, qosBurst float64) error {
	w, err := pipeline.WorkloadByID(workload)
	if err != nil {
		return err
	}
	kind, err := parseConfig(config)
	if err != nil {
		return err
	}
	// Fail a typo'd -backend before any replicas are built; the name itself is
	// resolved per replica inside pipeline.Build.
	if _, err := tensor.NewBackend(backend); err != nil {
		return err
	}
	if workers < 1 || clients < 1 || frames < 1 {
		return fmt.Errorf("workers, clients and frames must be positive")
	}
	if degrade < 0 || degrade > pipeline.MaxDegradeTiers {
		return fmt.Errorf("degrade must be 0..%d", pipeline.MaxDegradeTiers)
	}
	if chaosPanic < 0 || chaosPanic > 1 || chaosCorrupt < 0 || chaosCorrupt > 1 || chaosStall < 0 || chaosStall > 1 {
		return fmt.Errorf("chaos fractions must be in [0,1]")
	}
	if engines < 1 || engines > 64 {
		return fmt.Errorf("engines must be 1..64")
	}
	if stallTimeout < 0 {
		return fmt.Errorf("-stall-timeout must be non-negative, got %v (0 disables the watchdog)", stallTimeout)
	}
	if retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d (0 disables retries)", retries)
	}
	if hedge < 0 {
		return fmt.Errorf("-hedge must be non-negative, got %v (0 disables hedging)", hedge)
	}
	if engines == 1 && (retries > 0 || hedge > 0) {
		return fmt.Errorf("-retries and -hedge re-route across a fleet: set -engines > 1 to use them")
	}
	if tenants < 1 || qosRate < 0 || qosBurst < 0 {
		return fmt.Errorf("tenants must be positive, qos-rate/qos-burst non-negative")
	}
	opts := pipeline.Options{Seed: seed, Backend: backend}
	if quick {
		w.Points, w.Batch = 256, 1
		opts.BaseWidth, opts.Depth, opts.Modules = 8, 2, 2
	}
	tierOpts := pipeline.DegradeTiers(w, opts, degrade)
	if engines > 1 {
		return runFleet(w, kind, opts, tierOpts, engines, workers, queue, batch, window, timeout,
			frames, clients, seed, chaosPanic, chaosCorrupt, chaosStall, chaosSeed,
			stallTimeout, retries, hedge, checkpoint, tenants, qosRate, qosBurst)
	}
	rows, err := pipeline.TieredReplicas(w, kind, opts, workers, tierOpts)
	if err != nil {
		return err
	}
	if checkpoint != "" {
		// Replicas share weights: restoring into the first propagates to all.
		if err := pipeline.LoadCheckpoint(checkpoint, rows[0][0]); err != nil {
			return fmt.Errorf("-checkpoint %q: %w", checkpoint, err)
		}
	}
	cfg := serve.Config{
		QueueDepth:     queue,
		MaxBatch:       batch,
		BatchWindow:    window,
		DefaultTimeout: timeout,
		StallTimeout:   stallTimeout,
		Rebuild: func(worker, tier int) (pipeline.Net, error) {
			o := opts
			if tier > 0 {
				o = tierOpts[tier-1]
			}
			return pipeline.RebuildReplica(rows[0][0], w, kind, o)
		},
	}
	for i, row := range rows[1:] {
		cfg.Degrade = append(cfg.Degrade, serve.Tier{Name: tierName(i), Nets: row})
	}
	if chaosPanic > 0 || chaosCorrupt > 0 || chaosStall > 0 {
		cfg.Faults = &faultinject.Plan{Seed: chaosSeed, PanicFrac: chaosPanic, CorruptFrac: chaosCorrupt, StallFrac: chaosStall}
	}
	engine, err := serve.New(rows[0], edgesim.JetsonAGXXavier(), pipeline.SimConfig(w, kind, opts), cfg)
	if err != nil {
		return err
	}

	// A small pool of distinct frames, reused round-robin: frame generation is
	// not what this harness measures.
	nPool := frames
	if nPool > 8 {
		nPool = 8
	}
	pool := make([]*geom.Cloud, nPool)
	for i := range pool {
		if pool[i], err = pipeline.Frame(w, seed+int64(i)); err != nil {
			return err
		}
	}

	fmt.Printf("edgepc-serve: %s %s, %d workers, %d clients, %d frames (%d points each)\n",
		w.ID, kind, workers, clients, frames, w.Points)
	if backend != "" {
		fmt.Printf("compute backend: %s\n", backend)
	}
	if degrade > 0 {
		fmt.Printf("degradation ladder: %d tiers armed\n", degrade)
	}
	if cfg.Faults != nil {
		fmt.Printf("chaos: panic %.0f%%, corrupt %.0f%%, stall %.0f%% (seed %d)\n",
			chaosPanic*100, chaosCorrupt*100, chaosStall*100, chaosSeed)
	}
	if checkpoint != "" {
		fmt.Printf("restored weights from checkpoint %s\n", checkpoint)
	}
	if stallTimeout > 0 {
		fmt.Printf("stall watchdog armed at %v\n", stallTimeout)
	}

	var next, okCount, deadlineCount, panicCount, stalledCount, invalidCount, backoffs atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(frames) {
					return
				}
				req := serve.Request{Cloud: pool[i%int64(nPool)]}
				for {
					_, err := engine.Submit(context.Background(), req)
					switch {
					case err == nil:
						okCount.Add(1)
					case errors.Is(err, serve.ErrQueueFull):
						// Backpressure: yield briefly and resubmit.
						backoffs.Add(1)
						time.Sleep(200 * time.Microsecond)
						continue
					case errors.Is(err, serve.ErrDeadline):
						deadlineCount.Add(1)
					case errors.Is(err, serve.ErrPanic):
						// Isolated: the frame failed but the engine serves on.
						panicCount.Add(1)
					case errors.Is(err, serve.ErrStalled):
						// Watchdog-failed: the wedged worker was deposed.
						stalledCount.Add(1)
					case errors.Is(err, serve.ErrInvalidInput):
						invalidCount.Add(1)
					default:
						firstErr.CompareAndSwap(nil, err)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := engine.Close(); err != nil {
		return err
	}
	if e, ok := firstErr.Load().(error); ok {
		return e
	}

	s := engine.Stats()
	fmt.Printf("served %d frames: %d ok, %d deadline-dropped (%d backpressure retries)\n",
		okCount.Load()+deadlineCount.Load(), okCount.Load(), deadlineCount.Load(), backoffs.Load())
	fmt.Printf("latency p50 %v p90 %v p99 %v max %v (window of %d)\n",
		s.Latency.P50.Round(time.Microsecond), s.Latency.P90.Round(time.Microsecond),
		s.Latency.P99.Round(time.Microsecond), s.Latency.Max.Round(time.Microsecond), s.Latency.Window)
	fmt.Printf("batches: %d (mean %.2f frames/batch), throughput %.0f frames/s\n",
		s.Batches, s.MeanBatch, float64(okCount.Load())/elapsed.Seconds())
	fmt.Printf("resilience: %d panics (%d quarantines, %d breaker trips), %d stalls / %d respawns, %d invalid, %d step-downs / %d step-ups\n",
		s.Panics, s.Quarantines, s.BreakerTrips, s.Stalls, s.Respawns, s.Invalid, s.StepDowns, s.StepUps)
	if n := stalledCount.Load(); n > 0 {
		fmt.Printf("  %d frames failed by the stall watchdog\n", n)
	}
	for tier, n := range s.Degraded {
		if tier > 0 && n > 0 {
			fmt.Printf("  tier %d (%s): %d frames\n", tier, engine.TierName(tier), n)
		}
	}
	return nil
}

// runFleet drives a multi-engine fleet through the consistent-hash router
// (internal/serve.Router): weight-sharing replicas fleet-wide
// (pipeline.FleetReplicas), per-tenant QoS token buckets, priority load
// shedding and spillover, with clients cycling tenant/stream identities.
func runFleet(w pipeline.Workload, kind pipeline.ConfigKind, opts pipeline.Options, tierOpts []pipeline.Options,
	engines, workers, queue, batch int, window, timeout time.Duration,
	frames, clients int, seed int64, chaosPanic, chaosCorrupt, chaosStall float64, chaosSeed uint64,
	stallTimeout time.Duration, retryMax int, hedge time.Duration, checkpoint string,
	tenants int, qosRate, qosBurst float64) error {
	fleet, err := pipeline.FleetReplicas(w, kind, opts, engines, workers, tierOpts)
	if err != nil {
		return err
	}
	if checkpoint != "" {
		// The whole fleet shares weights: restoring into the first replica of
		// the first engine propagates everywhere.
		if err := pipeline.LoadCheckpoint(checkpoint, fleet[0][0][0]); err != nil {
			return fmt.Errorf("-checkpoint %q: %w", checkpoint, err)
		}
	}
	pool := make([]*serve.Engine, engines)
	for e := range pool {
		cfg := serve.Config{
			QueueDepth:     queue,
			MaxBatch:       batch,
			BatchWindow:    window,
			DefaultTimeout: timeout,
			StallTimeout:   stallTimeout,
			Rebuild: func(worker, tier int) (pipeline.Net, error) {
				o := opts
				if tier > 0 {
					o = tierOpts[tier-1]
				}
				return pipeline.RebuildReplica(fleet[0][0][0], w, kind, o)
			},
		}
		for i, row := range fleet[e][1:] {
			cfg.Degrade = append(cfg.Degrade, serve.Tier{Name: tierName(i), Nets: row})
		}
		if chaosPanic > 0 || chaosCorrupt > 0 || chaosStall > 0 {
			cfg.Faults = &faultinject.Plan{Seed: chaosSeed + uint64(e),
				PanicFrac: chaosPanic, CorruptFrac: chaosCorrupt, StallFrac: chaosStall}
		}
		eng, err := serve.New(fleet[e][0], edgesim.JetsonAGXXavier(), pipeline.SimConfig(w, kind, opts), cfg)
		if err != nil {
			return err
		}
		pool[e] = eng
	}
	rcfg := serve.RouterConfig{}
	if qosRate > 0 {
		rcfg.QoS = serve.NewQoS(serve.QoSConfig{Default: serve.TenantLimit{Rate: qosRate, Burst: qosBurst}})
	}
	if retryMax > 0 {
		rcfg.Retry = &serve.RetryPolicy{Max: retryMax}
	}
	if hedge > 0 {
		rcfg.Hedge = &serve.HedgePolicy{Delay: hedge}
	}
	router, err := serve.NewRouter(pool, rcfg)
	if err != nil {
		return err
	}

	nPool := frames
	if nPool > 8 {
		nPool = 8
	}
	cloudPool := make([]*geom.Cloud, nPool)
	for i := range cloudPool {
		if cloudPool[i], err = pipeline.Frame(w, seed+int64(i)); err != nil {
			return err
		}
	}

	fmt.Printf("edgepc-serve: %s %s fleet, %d engines x %d workers, %d clients, %d frames over %d tenants\n",
		w.ID, kind, engines, workers, clients, frames, tenants)
	if qosRate > 0 {
		fmt.Printf("qos: %.3g frames/s per tenant (burst %.3g)\n", qosRate, qosBurst)
	}
	if checkpoint != "" {
		fmt.Printf("restored weights from checkpoint %s\n", checkpoint)
	}
	if retryMax > 0 || hedge > 0 {
		fmt.Printf("survivability: %d retries, hedge after %v (stall watchdog %v)\n", retryMax, hedge, stallTimeout)
	}

	var next, okCount, shedCount, failCount, retries atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(frames) {
					return
				}
				tenant := fmt.Sprintf("tenant-%d", i%int64(tenants))
				req := serve.FleetRequest{
					Request: serve.Request{Cloud: cloudPool[i%int64(nPool)]},
					Tenant:  tenant,
					Stream:  fmt.Sprintf("%s-cam%d", tenant, i%2),
				}
				for {
					_, err := router.Submit(context.Background(), req)
					switch {
					case err == nil:
						okCount.Add(1)
					case errors.Is(err, serve.ErrQueueFull):
						// Owner and spill candidates all full: yield, resubmit.
						retries.Add(1)
						time.Sleep(200 * time.Microsecond)
						continue
					case errors.Is(err, serve.ErrThrottled), errors.Is(err, serve.ErrShed):
						shedCount.Add(1)
					case errors.Is(err, serve.ErrDeadline), errors.Is(err, serve.ErrPanic),
						errors.Is(err, serve.ErrStalled), errors.Is(err, serve.ErrInvalidInput):
						failCount.Add(1)
					default:
						firstErr.CompareAndSwap(nil, err)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	s := router.Stats()
	if err := router.Close(); err != nil {
		return err
	}
	if e, ok := firstErr.Load().(error); ok {
		return e
	}

	fmt.Printf("fleet: %d offered, %d completed, %d failed, shed %d/%d/%d (throttle/overload/queue), %d spills, %d quarantines\n",
		s.Offered, s.Completed, s.Failed, s.ShedThrottled, s.ShedOverload, s.ShedQueueFull, s.Spills, s.Quarantines)
	if s.Retries > 0 || s.Hedges > 0 || s.Stalls > 0 {
		fmt.Printf("survivability: %d retries, %d hedges (%d wins), %d stalled attempts\n",
			s.Retries, s.Hedges, s.HedgeWins, s.Stalls)
	}
	if err := s.Conservation(); err != nil {
		return err
	}
	fmt.Printf("fleet latency p50 %v p90 %v p99 %v, throughput %.0f frames/s (%d backpressure retries)\n",
		s.Latency.P50.Round(time.Microsecond), s.Latency.P90.Round(time.Microsecond),
		s.Latency.P99.Round(time.Microsecond), float64(okCount.Load())/elapsed.Seconds(), retries.Load())
	shares := make([]float64, 0, len(s.Tenants))
	for _, ts := range s.Tenants {
		shares = append(shares, float64(ts.Completed))
	}
	fmt.Printf("fleet fairness: %.3f (Jain, completed frames over %d tenants)\n", metrics.JainFairness(shares), len(s.Tenants))
	for i, es := range s.EngineStats {
		fmt.Printf("  engine %d: %d completed, %d step-downs, quarantined=%v\n", i, es.Completed, es.StepDowns, s.Quarantined[i])
	}
	if shed := shedCount.Load(); shed > 0 {
		fmt.Printf("clients saw %d sheds, %d frame failures\n", shed, failCount.Load())
	}
	return nil
}
