// Command edgepc-lint runs the repo's static-analysis suite (internal/lint)
// over module packages and prints file:line:col: [analyzer] diagnostics.
//
// Usage:
//
//	go run ./cmd/edgepc-lint ./...
//	go run ./cmd/edgepc-lint ./internal/tensor ./internal/nn/...
//	go run ./cmd/edgepc-lint -json ./...
//	go build -gcflags='-m -m' ./... 2>esc.txt && go run ./cmd/edgepc-lint -escapes esc.txt
//
// With -json each diagnostic is one JSON object per line on stdout
// ({"file","line","col","analyzer","message"}); the human summary stays on
// stderr. With -escapes the command runs the escape gate instead of the
// analyzer suite: it parses `go build -gcflags='-m -m'` output from the
// given file ("-" for stdin) and compares the heap escapes attributed to
// //edgepc:hotpath functions against the committed baseline
// (scripts/escape_baseline.txt, overridable with -escape-baseline);
// -escape-write regenerates the baseline instead of checking it. The usual
// entry point for both directions is scripts/escape_gate.sh.
//
// Exit status, in both modes: 0 when clean, 1 on findings (lint diagnostics,
// or new/stale escape-gate entries), 2 on load/parse errors. The suite and
// the //edgepc:hotpath and //edgepc:lint-ignore directive contracts are
// documented in DESIGN.md §7.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/escapegate"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic object per line instead of text")
	escapes := flag.String("escapes", "", "run the escape gate over `go build -gcflags='-m -m'` output in this file (- for stdin)")
	escapeBaseline := flag.String("escape-baseline", "scripts/escape_baseline.txt", "escape-gate baseline path, relative to the module root")
	escapeWrite := flag.Bool("escape-write", false, "rewrite the escape-gate baseline from the current escapes instead of checking")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: edgepc-lint [-list] [-json] [packages]\n       edgepc-lint -escapes <file|-> [-escape-baseline path] [-escape-write]\n\npackages default to ./... relative to the module root\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}

	if *escapes != "" {
		runEscapeGate(root, *escapes, *escapeBaseline, *escapeWrite)
		return
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	targets, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(loader, targets, analyzers)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		if *jsonOut {
			printJSON(file, d)
		} else {
			fmt.Printf("%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "edgepc-lint: %d finding(s) in %d package(s)\n", len(diags), len(targets))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("edgepc-lint: %d package(s) clean\n", len(targets))
	}
}

// jsonDiag is the machine-readable diagnostic shape: one object per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(file string, d lint.Diagnostic) {
	enc, err := json.Marshal(jsonDiag{File: file, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message})
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(enc))
}

// runEscapeGate parses compiler escape diagnostics from src and checks (or
// rewrites) the hotpath escape baseline.
func runEscapeGate(root, src, baselineRel string, write bool) {
	var in io.Reader
	if src == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(src)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	escs, err := escapegate.ParseDiagnostics(in)
	if err != nil {
		fatal(err)
	}
	regions, err := escapegate.HotpathRegions(root)
	if err != nil {
		fatal(err)
	}
	current := escapegate.Summarize(escapegate.Assign(regions, escs))
	baselinePath := baselineRel
	if !filepath.IsAbs(baselinePath) {
		baselinePath = filepath.Join(root, baselinePath)
	}
	if write {
		if err := escapegate.WriteBaseline(baselinePath, current); err != nil {
			fatal(err)
		}
		fmt.Printf("edgepc-lint: escape baseline written: %d class(es) across %d hotpath function(s)\n", len(current), len(regions))
		return
	}
	baseline, err := escapegate.LoadBaseline(baselinePath)
	if err != nil {
		fatal(err)
	}
	violations := escapegate.Check(current, baseline)
	for _, v := range violations {
		fmt.Printf("%s: %s: %q ×%d: %s\n", v.Entry.File, v.Entry.Func, v.Entry.Message, v.Entry.Count, v.Why)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "edgepc-lint: escape gate: %d violation(s) against %s\n", len(violations), baselineRel)
		os.Exit(1)
	}
	fmt.Printf("edgepc-lint: escape gate clean: %d hotpath function(s), %d baselined escape class(es)\n", len(regions), len(current))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgepc-lint:", err)
	os.Exit(2)
}
