// Command edgepc-lint runs the repo's static-analysis suite (internal/lint)
// over module packages and prints file:line:col: [analyzer] diagnostics.
//
// Usage:
//
//	go run ./cmd/edgepc-lint ./...
//	go run ./cmd/edgepc-lint ./internal/tensor ./internal/nn/...
//
// Exit status: 0 when clean, 1 on findings, 2 on load errors. The suite and
// the //edgepc:hotpath and //edgepc:lint-ignore directive contracts are
// documented in DESIGN.md §7.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: edgepc-lint [-list] [packages]\n\npackages default to ./... relative to the module root\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	targets, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(loader, targets, analyzers)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "edgepc-lint: %d finding(s) in %d package(s)\n", len(diags), len(targets))
		os.Exit(1)
	}
	fmt.Printf("edgepc-lint: %d package(s) clean\n", len(targets))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgepc-lint:", err)
	os.Exit(2)
}
