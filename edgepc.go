// Package edgepc is the public API of this EdgePC reproduction — Morton-code
// structurization of point clouds and the two approximations it enables
// (index-stride sampling and index-window neighbor search), together with
// the SOTA baselines (farthest point sampling, ball query, k-NN, kd-tree,
// uniform grid), two point-cloud CNNs (PointNet++ and DGCNN) with per-layer
// strategy selection and retraining, and a Jetson-AGX-Xavier cost model that
// prices pipeline traces into latency and energy.
//
// Quickstart:
//
//	cloud := edgepc.GenerateShape(edgepc.ShapeBlob, edgepc.ShapeOptions{N: 10000, Seed: 1})
//	s, _ := edgepc.Structurize(cloud, edgepc.StructurizeOptions{})
//	samples, _ := edgepc.SampleMorton(cloud, 1024)               // ≈ FPS quality, a fraction of the cost
//	nbrs, _ := edgepc.WindowNeighbors(s, []int{0, 1, 2}, 8, 16)  // index-window search
//
// See the examples/ directory for end-to-end programs and cmd/edgepc-bench
// for the paper's full experiment suite.
package edgepc

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/neighbor"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/train"
)

// Geometry types.
type (
	// Point3 is a point in 3-D space.
	Point3 = geom.Point3
	// Cloud is a point cloud with optional per-point features and labels.
	Cloud = geom.Cloud
	// AABB is an axis-aligned bounding box.
	AABB = geom.AABB
	// ShapeKind enumerates the procedural shape families.
	ShapeKind = geom.ShapeKind
	// ShapeOptions controls procedural shape synthesis.
	ShapeOptions = geom.ShapeOptions
	// SceneOptions controls synthetic indoor-scene synthesis.
	SceneOptions = geom.SceneOptions
)

// Shape families usable with GenerateShape.
const (
	ShapeSphere   = geom.ShapeSphere
	ShapeTorus    = geom.ShapeTorus
	ShapeBox      = geom.ShapeBox
	ShapeCylinder = geom.ShapeCylinder
	ShapeCone     = geom.ShapeCone
	ShapePlane    = geom.ShapePlane
	ShapeHelix    = geom.ShapeHelix
	ShapeBlob     = geom.ShapeBlob
	ShapeCross    = geom.ShapeCross
	ShapeShell    = geom.ShapeShell
)

// NewCloud allocates a cloud of n points with featDim features per point.
func NewCloud(n, featDim int) *Cloud { return geom.NewCloud(n, featDim) }

// GenerateShape samples a procedural surface (see ShapeKind).
func GenerateShape(kind ShapeKind, opts ShapeOptions) *Cloud { return geom.GenerateShape(kind, opts) }

// GenerateScene synthesizes a labelled indoor scene (the S3DIS/ScanNet
// stand-in).
func GenerateScene(opts SceneOptions) *Cloud { return geom.GenerateScene(opts) }

// SyntheticBunny generates the 40 256-point organic model used by the
// sampling-quality experiments (the Stanford Bunny stand-in).
func SyntheticBunny(seed int64) *Cloud { return geom.SyntheticBunny(seed) }

// Structurization (the paper's §4).
type (
	// Structurized is a Morton-ordered cloud plus the bookkeeping for
	// index-based operations.
	Structurized = core.Structurized
	// StructurizeOptions configures the Morton pass (code width, grid size).
	StructurizeOptions = core.StructurizeOptions
)

// Structurize re-orders a copy of the cloud by Morton code.
func Structurize(c *Cloud, opts StructurizeOptions) (*Structurized, error) {
	return core.Structurize(c, opts)
}

// SampleFPS runs farthest point sampling (the SOTA baseline, O(nN)).
func SampleFPS(c *Cloud, n int) ([]int, error) {
	return sample.FPS{}.Sample(c, n)
}

// SampleMorton runs the paper's Algorithm 1: Morton encode + sort + uniform
// index stride. Returns original-cloud indexes.
func SampleMorton(c *Cloud, n int) ([]int, error) {
	return core.MortonSampler{}.Sample(c, n)
}

// SampleStructurized samples n points from an already-structurized cloud
// (pick-only, O(n)).
func SampleStructurized(s *Structurized, n int) ([]int, error) {
	return core.SampleStructurized(s, n)
}

// KNNNeighbors finds the k nearest candidates for every query by exhaustive
// search (flat query-major result).
func KNNNeighbors(points, queries []Point3, k int) ([]int, error) {
	return neighbor.BruteKNN{}.Search(points, queries, k)
}

// KNNNeighborsExcludingSelf finds, for each query given as an index into
// points, its k nearest *other* points — the exact reference when comparing
// against searchers that exclude the query itself (WindowNeighbors with
// w > k).
func KNNNeighborsExcludingSelf(points []Point3, queryIdx []int, k int) ([]int, error) {
	return neighbor.KNNExcludingSelf(points, queryIdx, k)
}

// BallNeighbors finds up to k candidates within radius r of every query
// (PointNet++ ball-query semantics, padded).
func BallNeighbors(points, queries []Point3, k int, r float64) ([]int, error) {
	return neighbor.BallQuery{R: r}.Search(points, queries, k)
}

// WindowNeighbors runs the EdgePC index-window search on a structurized
// cloud: queryPos are positions into s's order; w is the window size
// (w == k selects the pure index pick). Results index s.Cloud.Points.
func WindowNeighbors(s *Structurized, queryPos []int, k, w int) ([]int, error) {
	return core.WindowSearcher{W: w}.SearchPositions(s.Cloud.Points, queryPos, k)
}

// FalseNeighborRatio computes the paper's Fig. 6 metric between two flat
// q×k neighbor results.
func FalseNeighborRatio(approx, exact []int, k int) (float64, error) {
	return neighbor.FalseNeighborRatio(approx, exact, k)
}

// EstimateNormals computes PCA surface normals (smallest covariance
// eigenvector of each point's exact k-neighborhood), oriented away from the
// cloud centroid.
func EstimateNormals(points []Point3, k int) ([]Point3, error) {
	return neighbor.EstimateNormals(points, k)
}

// EstimateNormalsWindow computes PCA normals using the Morton index-window
// neighborhood — O(N·W) instead of O(N²), within a few degrees of the exact
// normals on smooth surfaces.
func EstimateNormalsWindow(s *Structurized, k, w int) ([]Point3, error) {
	return core.EstimateNormalsWindow(s, k, w)
}

// CoverageRadius reports the mean and max distance from every cloud point to
// its nearest sampled point (sampling quality, Fig. 5).
func CoverageRadius(cloud []Point3, sampled []int) (mean, max float64, err error) {
	return metrics.CoverageRadius(cloud, sampled)
}

// Pipelines and models.
type (
	// Workload is one row of the paper's Table 1.
	Workload = pipeline.Workload
	// ConfigKind selects Baseline, S+N or S+N+F execution.
	ConfigKind = pipeline.ConfigKind
	// Options tunes network construction (width, depth, window, layers).
	Options = pipeline.Options
	// Net is a point-cloud CNN with strategy-selectable stages.
	Net = pipeline.Net
	// Trace records every pipeline stage of a forward pass.
	Trace = model.Trace
	// Output bundles logits with the (possibly permuted) labels.
	Output = model.Output
	// Device is the edge-GPU cost model.
	Device = edgesim.Device
	// SimConfig prices a trace under a batch/tensor-core/reuse setting.
	SimConfig = edgesim.Config
	// Report is a priced trace: latency breakdown and energy.
	Report = edgesim.Report
)

// Execution configurations (Fig. 12/13).
const (
	Baseline = pipeline.Baseline
	SN       = pipeline.SN
	SNF      = pipeline.SNF
)

// Arch selects the network architecture of a Workload.
type Arch = pipeline.Arch

// Network architectures (Fig. 2).
const (
	ArchPointNetPP = pipeline.ArchPointNetPP
	ArchDGCNN      = pipeline.ArchDGCNN
)

// Tasks.
const (
	TaskClassification = model.TaskClassification
	TaskSegmentation   = model.TaskSegmentation
)

// Workloads lists the paper's Table 1 rows (W1–W6).
func Workloads() []Workload { return append([]Workload(nil), pipeline.Workloads...) }

// WorkloadByID looks up a Table 1 workload ("W1"…"W6").
func WorkloadByID(id string) (Workload, error) { return pipeline.WorkloadByID(id) }

// BuildNet constructs a PointNet++ or DGCNN for a workload under a
// configuration.
func BuildNet(w Workload, kind ConfigKind, opts Options) (Net, error) {
	return pipeline.Build(w, kind, opts)
}

// GenerateFrame produces one deterministic input cloud for a workload.
func GenerateFrame(w Workload, seed int64) (*Cloud, error) { return pipeline.Frame(w, seed) }

// JetsonAGXXavier returns the paper's device profile.
func JetsonAGXXavier() *Device { return edgesim.JetsonAGXXavier() }

// JetsonOrinNX returns a faster successor-tier device profile.
func JetsonOrinNX() *Device { return edgesim.JetsonOrinNX() }

// JetsonNano returns an entry-tier device profile, where the paper's
// bottleneck bites hardest.
func JetsonNano() *Device { return edgesim.JetsonNano() }

// NewPointNetVanilla builds the original PointNet classifier — the control
// architecture with no sampling or neighbor-search stage at all. It
// implements Net.
func NewPointNetVanilla(classes, baseWidth int, seed int64) (Net, error) {
	return model.NewPointNetVanilla(model.PointNetConfig{Classes: classes, BaseWidth: baseWidth, Seed: seed})
}

// NewSimConfig derives the pricing configuration for a workload/config pair.
func NewSimConfig(w Workload, kind ConfigKind, opts Options) SimConfig {
	return pipeline.SimConfig(w, kind, opts)
}

// RunFrame executes one frame through a network and prices its trace.
func RunFrame(net Net, cloud *Cloud, dev *Device, cfg SimConfig) (*Trace, Report, *Output, error) {
	return pipeline.Run(net, cloud, dev, cfg)
}

// TuneWindow picks the largest search window (multiple of the workload's k,
// up to maxMult·k) whose modelled sample+neighbor-search latency fits the
// budget — the §5.2.3 adaptive accuracy/latency dial.
func TuneWindow(dev *Device, w Workload, opts Options, budget time.Duration, maxMult int) (window int, latency time.Duration, err error) {
	return pipeline.TuneWindow(dev, w, opts, budget, maxMult)
}

// Datasets and training.
type (
	// Dataset is a deterministic indexed sample collection.
	Dataset = dataset.Dataset
	// Sample is one dataset item.
	Sample = dataset.Sample
	// TrainConfig controls a training run.
	TrainConfig = train.Config
	// TrainResult summarizes a training run.
	TrainResult = train.Result
)

// NewClassificationDataset builds the synthetic ModelNet-like dataset with
// the given per-item point count (0 keeps the Table 1 default of 1 024).
func NewClassificationDataset(items, points int, seed int64) Dataset {
	d := dataset.NewClassification(items, seed)
	if points > 0 {
		d.Points = points
	}
	return d
}

// NewPartSegmentationDataset builds the synthetic ShapeNet-like dataset with
// the given per-item point count (0 keeps the Table 1 default of 2 048).
func NewPartSegmentationDataset(items, points int, seed int64) Dataset {
	d := dataset.NewPartSegmentation(items, seed)
	if points > 0 {
		d.Points = points
	}
	return d
}

// NewSceneDataset builds the synthetic S3DIS/ScanNet-like dataset
// (style "s3dis" or "scannet").
func NewSceneDataset(items, points int, style string, seed int64) Dataset {
	return dataset.NewSceneSegmentation(items, points, style, seed)
}

// NewSceneDatasetIntensity is NewSceneDataset with the one-channel
// reflectance feature attached to every point (the RGB stand-in); pair it
// with Options.ExtraFeatDim = 1 when building networks.
func NewSceneDatasetIntensity(items, points int, style string, seed int64) Dataset {
	d := dataset.NewSceneSegmentation(items, points, style, seed)
	d.Intensity = true
	return d
}

// SplitDataset returns deterministic train/test index sets.
func SplitDataset(n int, testFrac float64) (trainIdx, testIdx []int) {
	return dataset.Split(n, testFrac)
}

// DefaultAugment returns the standard training augmentation (random Z
// rotation, uniform scale in [0.8, 1.25], 0.01 Gaussian jitter) in the form
// TrainConfig.Augment expects.
func DefaultAugment() func(*Cloud, *rand.Rand) *Cloud {
	opts := geom.DefaultAugmentOptions()
	return func(c *Cloud, rng *rand.Rand) *Cloud {
		return geom.Augment(c, opts, rng)
	}
}

// SaveNet writes a network's trained parameters to a file.
func SaveNet(path string, net Net) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nn.SaveParams(f, net.Params())
}

// LoadNet reads parameters saved by SaveNet into an architecturally
// identical network (names and shapes are verified).
func LoadNet(path string, net Net) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nn.LoadParams(f, net.Params())
}

// SaveCheckpoint writes a crash-safe checkpoint of the network's
// parameters: versioned, per-parameter and whole-file checksummed, written
// via temp-file + fsync + atomic rename so a crash mid-write can never
// leave a torn file at path (the previous checkpoint, if any, survives).
func SaveCheckpoint(path string, net Net) error {
	return pipeline.SaveCheckpoint(path, net)
}

// LoadCheckpoint restores parameters from a SaveCheckpoint file into an
// architecturally identical network. Corruption — a flipped bit, a
// truncated tail, a foreign file — is always detected and reported with a
// typed error before any parameter is modified (all-or-nothing).
func LoadCheckpoint(path string, net Net) error {
	return pipeline.LoadCheckpoint(path, net)
}

// CopyParams copies trained weights between two architecturally identical
// networks — e.g. from a baseline-trained model into an SN-configured one
// before retraining, the paper's §5.3 procedure (the strategies differ, the
// parameter shapes do not).
func CopyParams(dst, src Net) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("edgepc: parameter count mismatch: %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if len(dp[i].Value.Data) != len(sp[i].Value.Data) {
			return fmt.Errorf("edgepc: parameter %s shape mismatch", dp[i].Name)
		}
		copy(dp[i].Value.Data, sp[i].Value.Data)
	}
	return nil
}

// Train runs the (re)training loop — with the approximations in the forward
// pass when the net was built with SN/SNF, which is how the paper recovers
// accuracy (§5.3).
func Train(net Net, ds Dataset, trainIdx, testIdx []int, cfg TrainConfig) (TrainResult, error) {
	return train.Run(net, ds, trainIdx, testIdx, cfg)
}

// Evaluate computes accuracy (and mIoU for segmentation) on the given items.
func Evaluate(net Net, ds Dataset, idx []int) (acc, miou float64, err error) {
	return train.Evaluate(net, ds, idx)
}

// CompressCloud encodes the cloud's geometry with the Morton delta codec
// (lossy, error bounded by half the voxel diagonal at the given bits/axis;
// 0 bits selects the default resolution of 10 bits/axis — the paper's a=32
// quantization).
func CompressCloud(c *Cloud, bitsPerAxis int) ([]byte, error) {
	return compress.Encode(c, compress.Options{BitsPerAxis: bitsPerAxis})
}

// DecompressCloud decodes a CompressCloud payload. The returned points are
// voxel centers in Morton order — already structurized for the EdgePC
// index-based operations.
func DecompressCloud(data []byte) (*Cloud, error) {
	return compress.Decode(data)
}

// CompressionMaxError bounds the reconstruction error for a cloud with the
// given bounds at the given resolution.
func CompressionMaxError(bounds AABB, bitsPerAxis int) float64 {
	return compress.MaxError(bounds, bitsPerAxis)
}

// File I/O.

// LoadCloud reads an ASCII OFF or PLY file, dispatching on extension.
func LoadCloud(path string) (*Cloud, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext(path) {
	case "off":
		return dataset.ReadOFF(f)
	case "ply":
		return dataset.ReadPLY(f)
	default:
		return nil, fmt.Errorf("edgepc: unsupported extension in %q (want .off or .ply)", path)
	}
}

// SaveCloud writes an ASCII OFF or PLY file, dispatching on extension.
func SaveCloud(path string, c *Cloud) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch ext(path) {
	case "off":
		return dataset.WriteOFF(f, c)
	case "ply":
		return dataset.WritePLY(f, c)
	default:
		return fmt.Errorf("edgepc: unsupported extension in %q (want .off or .ply)", path)
	}
}

func ext(path string) string {
	for i := len(path) - 1; i >= 0 && path[i] != '/'; i-- {
		if path[i] == '.' {
			out := path[i+1:]
			lower := make([]byte, len(out))
			for j := 0; j < len(out); j++ {
				c := out[j]
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				lower[j] = c
			}
			return string(lower)
		}
	}
	return ""
}
