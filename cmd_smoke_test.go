package edgepc_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Smoke tests for the command-line binaries: each must build and complete a
// minimal invocation. Run via `go run` so no artifacts are left behind.
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"edgepc-info", []string{"run", "./cmd/edgepc", "info", "-gen", "sphere", "-points", "500"}, "points: 500"},
		{"edgepc-sample", []string{"run", "./cmd/edgepc", "sample", "-gen", "sphere", "-points", "400", "-n", "40"}, "coverage radius"},
		{"edgepc-bench-list", []string{"run", "./cmd/edgepc-bench", "-list"}, "fig13"},
		{"edgepc-bench-quick", []string{"run", "./cmd/edgepc-bench", "-quick", "table1"}, "W6"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("%v: output lacks %q:\n%s", c.args, c.want, out)
			}
		})
	}
}
