package edgepc_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Smoke tests for the command-line binaries: each must build and complete a
// minimal invocation. Run via `go run` so no artifacts are left behind.
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"edgepc-info", []string{"run", "./cmd/edgepc", "info", "-gen", "sphere", "-points", "500"}, "points: 500"},
		{"edgepc-sample", []string{"run", "./cmd/edgepc", "sample", "-gen", "sphere", "-points", "400", "-n", "40"}, "coverage radius"},
		{"edgepc-bench-list", []string{"run", "./cmd/edgepc-bench", "-list"}, "fig13"},
		{"edgepc-bench-list-backends", []string{"run", "./cmd/edgepc-bench", "-list-backends"}, "int8"},
		{"edgepc-bench-quick", []string{"run", "./cmd/edgepc-bench", "-quick", "table1"}, "W6"},
		{"edgepc-bench-backend", []string{"run", "./cmd/edgepc-bench", "-quick", "-backend", "blocked", "fig3"}, "W6"},
		{"edgepc-serve-quick", []string{"run", "./cmd/edgepc-serve", "-quick", "-workload", "W1", "-frames", "6", "-clients", "2", "-workers", "2"}, "served 6 frames"},
		{"edgepc-serve-backend", []string{"run", "./cmd/edgepc-serve", "-quick", "-backend", "int8", "-workload", "W1", "-frames", "6", "-clients", "2", "-workers", "2"}, "compute backend: int8"},
		{"edgepc-serve-chaos", []string{"run", "./cmd/edgepc-serve", "-quick", "-workload", "W3", "-frames", "8", "-clients", "2", "-workers", "2", "-degrade", "1", "-chaos-panic", "0.2"}, "resilience:"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("%v: output lacks %q:\n%s", c.args, c.want, out)
			}
		})
	}
}

// TestCommandSmokeFailures: a bad invocation must fail loudly — nonzero exit
// and a diagnostic on stderr — not serve a default.
func TestCommandSmokeFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	cases := []struct {
		name string
		args []string
		want string // substring of the diagnostic
	}{
		{"edgepc-serve-bad-workload", []string{"run", "./cmd/edgepc-serve", "-quick", "-workload", "W9"}, "unknown workload"},
		{"edgepc-serve-bad-config", []string{"run", "./cmd/edgepc-serve", "-quick", "-config", "turbo"}, "unknown config"},
		{"edgepc-serve-bad-flag", []string{"run", "./cmd/edgepc-serve", "-no-such-flag"}, "flag provided but not defined"},
		{"edgepc-serve-bad-degrade", []string{"run", "./cmd/edgepc-serve", "-quick", "-degrade", "9"}, "degrade must be"},
		// A typo'd backend name must name the registered set, mirroring the
		// RegisterArch error style.
		{"edgepc-serve-bad-backend", []string{"run", "./cmd/edgepc-serve", "-quick", "-backend", "fp16"}, "no backend registered for \"fp16\" (registered: blocked, int8, naive)"},
		{"edgepc-bench-bad-backend", []string{"run", "./cmd/edgepc-bench", "-quick", "-backend", "fp16", "fig3"}, "no backend registered for \"fp16\" (registered: blocked, int8, naive)"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("%v: expected nonzero exit, got success:\n%s", c.args, out)
			}
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("%v: did not run: %v", c.args, err)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("%v: diagnostic lacks %q:\n%s", c.args, c.want, out)
			}
		})
	}
}
