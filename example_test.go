package edgepc_test

import (
	"fmt"
	"log"

	"repro"
)

// fig8Cloud is the five-point worked example of the paper's Fig. 8/10.
func fig8Cloud() *edgepc.Cloud {
	c := edgepc.NewCloud(0, 0)
	c.Points = []edgepc.Point3{
		{X: 3, Y: 6, Z: 2}, // P0 → Morton code 185 at r=1
		{X: 1, Y: 3, Z: 1}, // P1 → 23
		{X: 4, Y: 3, Z: 2}, // P2 → 114
		{X: 0, Y: 0, Z: 0}, // P3 → 0
		{X: 5, Y: 1, Z: 0}, // P4 → 67
	}
	return c
}

// The paper's Fig. 8(b): structurizing the five-point cloud at grid size 1
// yields the sorted index array {3, 1, 4, 2, 0}.
func ExampleStructurize() {
	s, err := edgepc.Structurize(fig8Cloud(), edgepc.StructurizeOptions{GridSize: 1, TotalBits: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted index array:", s.Perm)
	fmt.Println("sorted codes:", s.Codes)
	// Output:
	// sorted index array: [3 1 4 2 0]
	// sorted codes: [0 23 67 114 185]
}

// Sampling 3 of the 5 points picks P3, P4 and P0 — "exactly the same points"
// as farthest point sampling on this input (Fig. 8).
func ExampleSampleStructurized() {
	cloud := fig8Cloud()
	// Use the worked example's grid size r = 1 so the codes match Fig. 8.
	s, err := edgepc.Structurize(cloud, edgepc.StructurizeOptions{GridSize: 1, TotalBits: 30})
	if err != nil {
		log.Fatal(err)
	}
	morton, err := edgepc.SampleStructurized(s, 3)
	if err != nil {
		log.Fatal(err)
	}
	fps, err := edgepc.SampleFPS(cloud, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("morton:", morton)
	fmt.Println("fps:   ", fps)
	// Output:
	// morton: [3 4 0]
	// fps:    [0 3 4]
}

// The paper's Fig. 10(b): with a window of W = k+1 = 4 around P2 (position 3
// of the sorted order), the selected neighbors are P1, P4 and P0.
func ExampleWindowNeighbors() {
	s, err := edgepc.Structurize(fig8Cloud(), edgepc.StructurizeOptions{GridSize: 1, TotalBits: 30})
	if err != nil {
		log.Fatal(err)
	}
	nbrs, err := edgepc.WindowNeighbors(s, []int{3}, 3, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, pos := range nbrs {
		fmt.Printf("P%d ", s.Perm[pos])
	}
	fmt.Println()
	// Output:
	// P4 P1 P0
}

// The Morton codec compresses a structured scene several-fold with bounded
// reconstruction error.
func ExampleCompressCloud() {
	scene := edgepc.GenerateScene(edgepc.SceneOptions{N: 4096, Seed: 1})
	data, err := edgepc.CompressCloud(scene, 10)
	if err != nil {
		log.Fatal(err)
	}
	back, err := edgepc.DecompressCloud(data)
	if err != nil {
		log.Fatal(err)
	}
	raw := scene.Len() * 12
	fmt.Println("points preserved:", back.Len() == scene.Len())
	fmt.Println("ratio > 3x:", float64(raw) > 3*float64(len(data)))
	// Output:
	// points preserved: true
	// ratio > 3x: true
}
