package edgepc_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

func TestPublicAPIPipelineEndToEnd(t *testing.T) {
	// The full public surface in one pass: generate → structurize → sample
	// → search → build → run → price.
	cloud := edgepc.GenerateShape(edgepc.ShapeBlob, edgepc.ShapeOptions{N: 400, DensitySkew: 0.5, Seed: 1})
	s, err := edgepc.Structurize(cloud, edgepc.StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 400 {
		t.Fatalf("structurized %d points", s.Len())
	}
	fps, err := edgepc.SampleFPS(cloud, 40)
	if err != nil {
		t.Fatal(err)
	}
	morton, err := edgepc.SampleMorton(cloud, 40)
	if err != nil {
		t.Fatal(err)
	}
	fMean, _, err := edgepc.CoverageRadius(cloud.Points, fps)
	if err != nil {
		t.Fatal(err)
	}
	mMean, _, err := edgepc.CoverageRadius(cloud.Points, morton)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 5 claim at metric level: Morton-uniform coverage is FPS-like
	// (allow generous slack at this tiny scale).
	if mMean > 2*fMean {
		t.Fatalf("morton coverage %v far worse than FPS %v", mMean, fMean)
	}

	pos := []int{0, 10, 100, 399}
	nbrs, err := edgepc.WindowNeighbors(s, pos, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != len(pos)*4 {
		t.Fatalf("window result length %d", len(nbrs))
	}

	w := edgepc.Workload{
		ID: "t", Dataset: "S3DIS", Points: 200, Batch: 2,
		Arch: edgepc.ArchPointNetPP, Task: edgepc.TaskSegmentation, Classes: 8, K: 4,
	}
	opts := edgepc.Options{BaseWidth: 4, Depth: 2, Seed: 1}
	net, err := edgepc.BuildNet(w, edgepc.SN, opts)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := edgepc.GenerateFrame(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	trace, rep, out, err := edgepc.RunFrame(net, frame, edgepc.JetsonAGXXavier(), edgepc.NewSimConfig(w, edgepc.SN, opts))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Records) == 0 || rep.Total <= 0 || out.Logits.Rows != frame.Len() {
		t.Fatal("pipeline run incomplete")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	ws := edgepc.Workloads()
	if len(ws) != 6 {
		t.Fatalf("%d workloads", len(ws))
	}
	// The returned slice is a copy.
	ws[0].Points = 1
	w1, err := edgepc.WorkloadByID("W1")
	if err != nil {
		t.Fatal(err)
	}
	if w1.Points == 1 {
		t.Fatal("Workloads() exposed internal state")
	}
}

func TestPublicAPITrainTiny(t *testing.T) {
	ds := edgepc.NewClassificationDataset(8, 64, 5)
	w := edgepc.Workload{
		Arch: edgepc.ArchDGCNN, Task: edgepc.TaskClassification,
		Classes: ds.Classes(), K: 4,
	}
	net, err := edgepc.BuildNet(w, edgepc.Baseline, edgepc.Options{BaseWidth: 4, Modules: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	trainIdx, testIdx := edgepc.SplitDataset(ds.Len(), 0.25)
	res, err := edgepc.Train(net, ds, trainIdx, testIdx, edgepc.TrainConfig{Epochs: 2, LR: 1e-3, BatchSize: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainLoss) != 2 {
		t.Fatalf("loss history %v", res.TrainLoss)
	}
	acc, _, err := edgepc.Evaluate(net, ds, testIdx)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestPublicAPIFileIO(t *testing.T) {
	dir := t.TempDir()
	cloud := edgepc.GenerateShape(edgepc.ShapeSphere, edgepc.ShapeOptions{N: 50, Seed: 3})
	for _, name := range []string{"c.off", "c.ply", "c.PLY"} {
		path := filepath.Join(dir, name)
		if err := edgepc.SaveCloud(path, cloud); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := edgepc.LoadCloud(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Len() != 50 {
			t.Fatalf("%s: %d points", name, back.Len())
		}
	}
	if err := edgepc.SaveCloud(filepath.Join(dir, "c.xyz"), cloud); err == nil {
		t.Fatal("unsupported extension: want error")
	}
	if _, err := edgepc.LoadCloud(filepath.Join(dir, "missing.off")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v", err)
	}
}

func TestPublicAPISaveLoadNet(t *testing.T) {
	w := edgepc.Workload{
		Arch: edgepc.ArchDGCNN, Task: edgepc.TaskClassification, Classes: 3, K: 4,
	}
	opts := edgepc.Options{BaseWidth: 4, Modules: 2, Seed: 7}
	src, err := edgepc.BuildNet(w, edgepc.SN, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.epnn")
	if err := edgepc.SaveNet(path, src); err != nil {
		t.Fatal(err)
	}
	dst, err := edgepc.BuildNet(w, edgepc.SN, edgepc.Options{BaseWidth: 4, Modules: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := edgepc.LoadNet(path, dst); err != nil {
		t.Fatal(err)
	}
	// Same weights → identical logits on the same cloud.
	cloud := edgepc.GenerateShape(edgepc.ShapeSphere, edgepc.ShapeOptions{N: 40, Seed: 1})
	a, err := src.Forward(cloud, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Forward(cloud, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits.Equal(b.Logits) {
		t.Fatal("loaded network disagrees with saved one")
	}
	// Mismatched architecture rejected.
	other, err := edgepc.BuildNet(w, edgepc.SN, edgepc.Options{BaseWidth: 8, Modules: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := edgepc.LoadNet(path, other); err == nil {
		t.Fatal("mismatched width: want error")
	}
}

func TestPublicAPICopyParamsAndAugment(t *testing.T) {
	w := edgepc.Workload{Arch: edgepc.ArchDGCNN, Task: edgepc.TaskClassification, Classes: 3, K: 4}
	a, err := edgepc.BuildNet(w, edgepc.Baseline, edgepc.Options{BaseWidth: 4, Modules: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := edgepc.BuildNet(w, edgepc.SN, edgepc.Options{BaseWidth: 4, Modules: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := edgepc.CopyParams(b, a); err != nil {
		t.Fatal(err)
	}
	aug := edgepc.DefaultAugment()
	cloud := edgepc.GenerateShape(edgepc.ShapeTorus, edgepc.ShapeOptions{N: 30, Seed: 3})
	out := aug(cloud, rand.New(rand.NewSource(1)))
	if out.Len() != cloud.Len() {
		t.Fatal("augment changed point count")
	}
}

func TestPublicAPITuneWindow(t *testing.T) {
	w := edgepc.Workload{
		ID: "t", Dataset: "S3DIS", Points: 512, Batch: 2,
		Arch: edgepc.ArchPointNetPP, Task: edgepc.TaskSegmentation, Classes: 8, K: 4,
	}
	win, lat, err := edgepc.TuneWindow(edgepc.JetsonAGXXavier(), w,
		edgepc.Options{BaseWidth: 4, Depth: 2, Seed: 1}, time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	if win < w.K || lat <= 0 {
		t.Fatalf("tuned window %d, latency %v", win, lat)
	}
}

func TestPublicAPIBallNeighbors(t *testing.T) {
	pts := []edgepc.Point3{{X: 0}, {X: 0.1}, {X: 5}}
	out, err := edgepc.BallNeighbors(pts, pts[:1], 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range out {
		if n == 2 {
			t.Fatal("ball query returned the far point")
		}
	}
}

func TestPublicAPIRemainingSurface(t *testing.T) {
	// Devices.
	for _, dev := range []*edgepc.Device{edgepc.JetsonAGXXavier(), edgepc.JetsonOrinNX(), edgepc.JetsonNano()} {
		if dev.Name == "" || dev.CUDAFLOPS <= 0 {
			t.Fatalf("bad device profile %+v", dev)
		}
	}
	// Vanilla PointNet control through the facade.
	net, err := edgepc.NewPointNetVanilla(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cloud := edgepc.GenerateShape(edgepc.ShapeBox, edgepc.ShapeOptions{N: 24, Seed: 2})
	out, err := net.Forward(cloud, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Logits.Rows != 1 || out.Logits.Cols != 4 {
		t.Fatalf("vanilla logits %dx%d", out.Logits.Rows, out.Logits.Cols)
	}
	// Datasets with intensity features.
	ds := edgepc.NewSceneDatasetIntensity(2, 128, "scannet", 3)
	s, err := ds.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cloud.FeatDim != 1 || len(s.Cloud.Feat) != s.Cloud.Len() {
		t.Fatal("intensity feature missing")
	}
	// Exact no-self reference.
	idx := []int{0, 1}
	exact, err := edgepc.KNNNeighborsExcludingSelf(s.Cloud.Points, idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 6 {
		t.Fatalf("no-self result length %d", len(exact))
	}
	// Compression error bound helper.
	if e := edgepc.CompressionMaxError(s.Cloud.Bounds(), 10); e <= 0 {
		t.Fatalf("error bound %v", e)
	}
	// Part segmentation dataset with custom points.
	pds := edgepc.NewPartSegmentationDataset(1, 96, 1)
	ps, err := pds.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Cloud.Len() != 96 {
		t.Fatalf("part-seg points %d", ps.Cloud.Len())
	}
	// Normals, exact and window-approximate.
	sphere := edgepc.GenerateShape(edgepc.ShapeSphere, edgepc.ShapeOptions{N: 200, Seed: 4})
	exactN, err := edgepc.EstimateNormals(sphere.Points, 8)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := edgepc.Structurize(sphere, edgepc.StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	approxN, err := edgepc.EstimateNormalsWindow(sst, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(exactN) != 200 || len(approxN) != 200 {
		t.Fatalf("normals lengths %d/%d", len(exactN), len(approxN))
	}
}
