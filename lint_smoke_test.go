package edgepc_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestLintSmoke drives the edgepc-lint binary end to end, the way ci.sh
// invokes it: a known-bad fixture package must produce diagnostics and exit
// nonzero, and a clean fixture must exit zero. The hotpathalloc failure mode
// is demonstrated here on a fixture, never by breaking the production tree.
func TestLintSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	t.Run("bad-fixture-fails", func(t *testing.T) {
		out, err := exec.Command("go", "run", "./cmd/edgepc-lint",
			"./internal/lint/testdata/src/hotpath_bad").CombinedOutput()
		if err == nil {
			t.Fatalf("expected nonzero exit on hotpath_bad:\n%s", out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("go run failed to execute: %v\n%s", err, out)
		}
		if code := ee.ExitCode(); code != 1 {
			t.Fatalf("exit code %d, want 1 (findings)\n%s", code, out)
		}
		text := string(out)
		for _, want := range []string{
			"[hotpathalloc]",
			"tensor.MatMul allocates on a //edgepc:hotpath function",
			"hotpath_bad.go:",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("output lacks %q:\n%s", want, text)
			}
		}
	})
	t.Run("clean-fixture-passes", func(t *testing.T) {
		out, err := exec.Command("go", "run", "./cmd/edgepc-lint",
			"./internal/lint/testdata/src/hotpath_clean").CombinedOutput()
		if err != nil {
			t.Fatalf("expected exit 0 on hotpath_clean: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "clean") {
			t.Errorf("output lacks clean summary:\n%s", out)
		}
	})
}
