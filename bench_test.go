// Benchmarks regenerating the wall-clock side of every paper table/figure on
// the host CPU (the modelled-device side lives in cmd/edgepc-bench). One
// benchmark (family) per experiment, per DESIGN.md's experiment index:
//
//	Fig. 3  -> BenchmarkFig3Pipeline*
//	Fig. 5  -> BenchmarkFig5Sampling*          (§4.2 FPS vs uniform anchor)
//	Fig. 6  -> BenchmarkFig6FNR
//	Fig. 9  -> BenchmarkFig9Interp*
//	Fig. 11 -> BenchmarkFig11WindowPerLevel
//	Fig. 13 -> BenchmarkFig13Config*
//	Fig. 14 -> BenchmarkFig14TrainStep
//	Fig. 15 -> BenchmarkFig15aWindow*
//	§5.4.1  -> BenchmarkSec541ConvShape*
//	§5.4.2  -> BenchmarkSec542Grouping*
//	ablations -> BenchmarkAblation* (also see internal/morton, internal/neighbor)
package edgepc_test

import (
	"testing"

	"repro"
)

const (
	benchPoints = 2048 // large enough to be meaningful, small enough for -bench=.
	benchK      = 8
)

func benchFrame(b *testing.B, points int) *edgepc.Cloud {
	b.Helper()
	return edgepc.GenerateScene(edgepc.SceneOptions{N: points, Seed: 42})
}

// --- Fig. 5 / §4.2: sampling ---

func BenchmarkFig5SamplingFPS(b *testing.B) {
	frame := benchFrame(b, benchPoints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgepc.SampleFPS(frame, benchPoints/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5SamplingMorton(b *testing.B) {
	frame := benchFrame(b, benchPoints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgepc.SampleMorton(frame, benchPoints/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5SamplingMortonPickOnly(b *testing.B) {
	frame := benchFrame(b, benchPoints)
	s, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgepc.SampleStructurized(s, benchPoints/4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6 / Fig. 15a: neighbor search ---

func BenchmarkFig6FNR(b *testing.B) {
	frame := benchFrame(b, benchPoints)
	s, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	exact, err := edgepc.KNNNeighbors(s.Cloud.Points, s.Cloud.Points, benchK)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		approx, err := edgepc.WindowNeighbors(s, pos, benchK, benchK)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := edgepc.FalseNeighborRatio(approx, exact, benchK); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15aWindowExactKNN(b *testing.B) {
	frame := benchFrame(b, benchPoints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgepc.KNNNeighbors(frame.Points, frame.Points, benchK); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWindow(b *testing.B, w int) {
	frame := benchFrame(b, benchPoints)
	s, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgepc.WindowNeighbors(s, pos, benchK, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15aWindow1k(b *testing.B)  { benchWindow(b, benchK) }
func BenchmarkFig15aWindow2k(b *testing.B)  { benchWindow(b, 2*benchK) }
func BenchmarkFig15aWindow4k(b *testing.B)  { benchWindow(b, 4*benchK) }
func BenchmarkFig15aWindow16k(b *testing.B) { benchWindow(b, 16*benchK) }

// --- Fig. 11: per-level window search (levels shrink 4× each) ---

func BenchmarkFig11WindowPerLevel(b *testing.B) {
	// One window search per hierarchy level (levels shrink 4×), the work
	// pattern of applying the approximation to every SA module.
	frame := benchFrame(b, benchPoints)
	s, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Query positions per level: the stride-sampled positions.
	var levels [][]int
	for n := s.Len(); n > 4*benchK; n /= 4 {
		pos := make([]int, 0, n/4)
		for p := 0; p < s.Len(); p += s.Len() / (n / 4) {
			pos = append(pos, p)
		}
		levels = append(levels, pos)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pos := range levels {
			if _, err := edgepc.WindowNeighbors(s, pos, benchK, 2*benchK); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Fig. 9: interpolation (up-sampling) ---

func BenchmarkFig9InterpBaseline(b *testing.B) {
	// ThreeNN plans over the full coarse set: the SOTA FP path, exercised
	// through a baseline PointNet++ forward (interp included).
	benchPipeline(b, edgepc.Baseline, edgepc.ArchPointNetPP)
}

func BenchmarkFig9InterpMorton(b *testing.B) {
	benchPipeline(b, edgepc.SN, edgepc.ArchPointNetPP)
}

// --- Fig. 3 / Fig. 13: full pipelines ---

func benchPipeline(b *testing.B, kind edgepc.ConfigKind, arch edgepc.Arch) {
	b.Helper()
	w := edgepc.Workload{
		ID: "bench", Dataset: "S3DIS", Points: 512, Batch: 8,
		Arch: arch, Task: edgepc.TaskSegmentation, Classes: 8, K: benchK,
	}
	opts := edgepc.Options{BaseWidth: 8, Depth: 3, Modules: 3, Seed: 9}
	net, err := edgepc.BuildNet(w, kind, opts)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := edgepc.GenerateFrame(w, 9)
	if err != nil {
		b.Fatal(err)
	}
	dev := edgepc.JetsonAGXXavier()
	cfg := edgepc.NewSimConfig(w, kind, opts)
	// One warm-up frame so the steady state (workspace buffers populated) is
	// what gets measured, then report allocations — the per-frame allocation
	// count is a tracked regression metric (see scripts/bench_hotpath.sh).
	if _, _, _, err := edgepc.RunFrame(net, frame, dev, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := edgepc.RunFrame(net, frame, dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3PipelinePointNetBaseline(b *testing.B) {
	benchPipeline(b, edgepc.Baseline, edgepc.ArchPointNetPP)
}

func BenchmarkFig3PipelineDGCNNBaseline(b *testing.B) {
	benchPipeline(b, edgepc.Baseline, edgepc.ArchDGCNN)
}

func BenchmarkFig13ConfigSN(b *testing.B) {
	benchPipeline(b, edgepc.SN, edgepc.ArchPointNetPP)
}

func BenchmarkFig13ConfigSNF(b *testing.B) {
	benchPipeline(b, edgepc.SNF, edgepc.ArchDGCNN)
}

// --- Fig. 14: one retraining step ---

func BenchmarkFig14TrainStep(b *testing.B) {
	ds := edgepc.NewClassificationDataset(4, 128, 3)
	w := edgepc.Workload{
		Arch: edgepc.ArchDGCNN, Task: edgepc.TaskClassification,
		Classes: ds.Classes(), K: benchK,
	}
	net, err := edgepc.BuildNet(w, edgepc.SN, edgepc.Options{BaseWidth: 8, Modules: 2, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One epoch over the 4-item dataset = 4 forward+backward steps.
		if _, err := edgepc.Train(net, ds, []int{0, 1, 2, 3}, nil, edgepc.TrainConfig{
			Epochs: 1, LR: 1e-3, BatchSize: 4, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.4.2: grouping with sorted vs raw index rows ---

func BenchmarkSec542GroupingRaw(b *testing.B)    { benchGrouping(b, false) }
func BenchmarkSec542GroupingSorted(b *testing.B) { benchGrouping(b, true) }

func benchGrouping(b *testing.B, sorted bool) {
	frame := benchFrame(b, benchPoints)
	nbr, err := edgepc.KNNNeighbors(frame.Points, frame.Points[:benchPoints/4], benchK)
	if err != nil {
		b.Fatal(err)
	}
	if sorted {
		for q := 0; q < benchPoints/4; q++ {
			row := nbr[q*benchK : (q+1)*benchK]
			insertionSort(row)
		}
	}
	// Gather a 32-wide feature row per neighbor, the grouping stage's
	// memory pattern.
	const c = 32
	feat := make([]float32, benchPoints*c)
	for i := range feat {
		feat[i] = float32(i)
	}
	out := make([]float32, len(nbr)*c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, n := range nbr {
			copy(out[j*c:(j+1)*c], feat[n*c:(n+1)*c])
		}
	}
	b.SetBytes(int64(len(nbr) * c * 4))
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// --- Ablation: structurize cost by code width ---

func benchStructurize(b *testing.B, bits int) {
	frame := benchFrame(b, benchPoints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{TotalBits: bits}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStructurize30Bits(b *testing.B) { benchStructurize(b, 30) }
func BenchmarkAblationStructurize63Bits(b *testing.B) { benchStructurize(b, 63) }
